(* Differential seq-vs-par properties: every parallel code path must
   produce results structurally identical to the sequential engine at
   any domain count.  Each property draws a random workload and runs it
   pinned to 1, 2 and 4 domains; any divergence — rows, statistics,
   dependency entries, VCG edges, cycles, model-checker verdicts or the
   reachable-state set itself — fails the property. *)

open Relalg

let domains_swept = [ 1; 2; 4 ]

(* Run [f] at every domain count and check all observations agree. *)
let agree f =
  match List.map (fun d -> Par.Pool.with_domains d f) domains_swept with
  | [] -> true
  | r :: rest -> List.for_all (( = ) r) rest

(* ------------------------- solver differential ------------------------ *)

let value_pool = [ "a"; "b"; "c"; "d" ]

let spec_gen =
  QCheck.Gen.(
    let nonempty_sub pool =
      let* mask = list_repeat (List.length pool) bool in
      let chosen = List.filteri (fun i _ -> List.nth mask i) pool in
      return (if chosen = [] then [ List.hd pool ] else chosen)
    in
    let* ncols = int_range 2 4 in
    let names = List.init ncols (Printf.sprintf "c%d") in
    let* cols =
      flatten_l
        (List.mapi
           (fun i name ->
             let* dom = nonempty_sub value_pool in
             return
               {
                 Solver.cname = name;
                 role = (if i < ncols - 1 then Solver.Input else Solver.Output);
                 domain = List.map (fun s -> Value.Str s) dom;
               })
           names)
    in
    let* constraints =
      flatten_l
        (List.map
           (fun name ->
             let* kind = int_bound 3 in
             let* vs = nonempty_sub value_pool in
             let* other = oneofl names in
             let e =
               match kind with
               | 0 -> Expr.True
               | 1 -> Expr.isin name vs
               | 2 -> Expr.Eq (Expr.col name, Expr.col other)
               | _ -> Expr.Not (Expr.Eq (Expr.col name, Expr.col other))
             in
             return (name, e))
           names)
    in
    return (Solver.make ~name:"rand" ~columns:cols ~constraints))

let spec_arb =
  QCheck.make spec_gen ~print:(fun s ->
      String.concat ","
        (List.map (fun c -> c.Solver.cname) (Solver.columns s)))

let observe_generation (tbl, stats) =
  ( Schema.columns (Table.schema tbl),
    Table.rows tbl,
    stats.Solver.candidates,
    stats.Solver.evaluations,
    stats.Solver.per_column )

let prop_generate_diff =
  QCheck.Test.make ~count:500
    ~name:"incremental generation identical across 1/2/4 domains" spec_arb
    (fun s -> agree (fun () -> observe_generation (Solver.generate s)))

let prop_monolithic_diff =
  QCheck.Test.make ~count:500
    ~name:"monolithic generation identical across 1/2/4 domains" spec_arb
    (fun s ->
      agree (fun () -> observe_generation (Solver.generate_monolithic s)))

(* --------------------- relational-operator differential --------------- *)

let wide_table_gen =
  QCheck.Gen.(
    let* n = int_range 0 1500 in
    let* rows =
      list_repeat n
        (let* k = oneofl value_pool in
         let* x = int_bound 9 in
         return [| Value.Str k; Value.Int x |])
    in
    return (Table.of_rows ~name:"t" (Schema.of_list [ "k"; "x" ]) rows))

let prop_select_diff =
  QCheck.Test.make ~count:100
    ~name:"parallel selection identical across 1/2/4 domains"
    (QCheck.make
       QCheck.Gen.(pair wide_table_gen (oneofl value_pool))
       ~print:(fun (t, v) ->
         Printf.sprintf "%d rows, k=%s" (Table.cardinality t) v))
    (fun (t, v) ->
      agree (fun () -> Table.rows (Ops.select (Expr.eq "k" v) t)))

let prop_join_diff =
  QCheck.Test.make ~count:100
    ~name:"parallel hash-join probe identical across 1/2/4 domains"
    (QCheck.make
       QCheck.Gen.(pair wide_table_gen wide_table_gen)
       ~print:(fun (a, b) ->
         Printf.sprintf "%d x %d rows" (Table.cardinality a)
           (Table.cardinality b)))
    (fun (a, b) ->
      let b = Ops.rename [ "k", "k"; "x", "y" ] b in
      agree (fun () -> Table.rows (Ops.equi_join ~on:[ "k", "k" ] a b)))

(* ----------------------- deadlock-check differential ------------------ *)

let assignment_gen =
  QCheck.Gen.(
    let* base = oneofl Checker.Vcassign.standard in
    let* tweaks = int_bound 3 in
    let channels =
      Checker.Vcassign.
        [ vc0; vc1; vc2; vc3; vc4 ]
    in
    let rec tweak v k =
      if k = 0 || v.Checker.Vcassign.rows = [] then return v
      else
        let* row = oneofl v.Checker.Vcassign.rows in
        let* vc = oneofl channels in
        tweak
          (Checker.Vcassign.reassign v ~msg:row.Checker.Vcassign.msg
             ~src:row.Checker.Vcassign.src ~dst:row.Checker.Vcassign.dst ~vc)
          (k - 1)
    in
    tweak base tweaks)

let nonempty_sublist_gen xs =
  QCheck.Gen.(
    let* mask = list_repeat (List.length xs) bool in
    let chosen = List.filteri (fun i _ -> List.nth mask i) xs in
    return (if chosen = [] then [ List.hd xs ] else chosen))

let deadlock_case_gen =
  QCheck.Gen.(
    let* v = assignment_gen in
    let* controllers = nonempty_sublist_gen Protocol.deadlock_controllers in
    let* placements = nonempty_sublist_gen Protocol.Topology.all_placements in
    let* interleavings = bool in
    return (v, controllers, placements, interleavings))

let observe_report (r : Checker.Deadlock.report) =
  ( List.map (fun e -> e.Checker.Dependency.dep) r.entries,
    List.map
      (fun (src, dst, label) ->
        src, dst, List.map (fun e -> e.Checker.Dependency.dep) label)
      (Vcgraph.Digraph.edges r.vcg),
    List.map (fun (c : _ Vcgraph.Cycles.cycle) -> c.nodes) r.cycles )

let prop_deadlock_diff =
  QCheck.Test.make ~count:500
    ~name:
      "dependency table, VCG edges and cycles identical across 1/2/4 domains"
    (QCheck.make deadlock_case_gen ~print:(fun (v, cs, ps, il) ->
         Printf.sprintf "%s, %d controllers, %d placements, interleavings=%b"
           v.Checker.Vcassign.name (List.length cs) (List.length ps) il))
    (fun (v, controllers, placements, interleavings) ->
      agree (fun () ->
          observe_report
            (Checker.Deadlock.analyze ~placements ~interleavings ~controllers
               v)))

(* ------------------------- mcheck differential ------------------------ *)

let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())

let mcheck_case_gen =
  QCheck.Gen.(
    let* ops = nonempty_sublist_gen [ "load"; "store" ] in
    let* evictions = bool in
    let* capacity = int_range 1 3 in
    let* max_states = int_range 60 150 in
    let* symmetry = bool in
    let ops = if evictions then ops @ [ "evict" ] else ops in
    return
      ( { Mcheck.Semantics.nodes = 2; addrs = 1; ops; capacity; io_addrs = [];
          lossy = false },
        max_states,
        symmetry ))

let observe_mcheck (r : Mcheck.Explore.result) =
  (* everything except wall-clock time *)
  ( r.explored, r.transitions, r.max_depth, r.violation, r.complete,
    r.dedup_hits, r.per_depth, r.max_frontier, r.states )

(* The level-synchronized engine replays sequential bookkeeping exactly,
   so EVERY field — including the schedule-sensitive per_depth /
   max_depth / max_frontier — must match at any domain count, even on
   truncated searches.  Pinned to [`Level]: the default engine is now the
   work-stealing core, whose contract is the weaker order-free one
   checked below. *)
let prop_mcheck_diff =
  QCheck.Test.make ~count:500
    ~name:
      "model-checker verdict and reachable-state set identical across 1/2/4 \
       domains"
    (QCheck.make mcheck_case_gen ~print:(fun (cfg, max_states, symmetry) ->
         Printf.sprintf "ops=[%s] capacity=%d max_states=%d symmetry=%b"
           (String.concat ";" cfg.Mcheck.Semantics.ops)
           cfg.Mcheck.Semantics.capacity max_states symmetry))
    (fun (cfg, max_states, symmetry) ->
      agree (fun () ->
          observe_mcheck
            (Mcheck.Explore.run ~max_states ~symmetry ~engine:`Level
               ~tables:(Lazy.force mcheck_tables) ~keep_states:true cfg)))

(* ---------------- packed / work-stealing differential ----------------- *)

(* The stealing engine's schedule is nondeterministic, so only its
   order-free observables are comparable: for a COMPLETE exact search
   every visited state is expanded exactly once in any schedule, making
   the reachable set, explored / transitions / dedup totals, the verdict
   and the coverage bitmaps schedule-independent.  per_depth, max_depth
   and max_frontier are not, and are deliberately left out. *)
let observe_order_free (r : Mcheck.Explore.result) =
  (r.explored, r.transitions, r.dedup_hits, r.violation, r.complete, r.states)

let steal_case_gen =
  QCheck.Gen.(
    let* ops = nonempty_sublist_gen [ "load"; "store" ] in
    let* evictions = bool in
    let* capacity = int_range 1 2 in
    let* symmetry = bool in
    let ops = if evictions then ops @ [ "evict" ] else ops in
    return
      ( { Mcheck.Semantics.nodes = 2; addrs = 1; ops; capacity; io_addrs = [];
          lossy = false },
        symmetry ))

let print_steal_case (cfg, symmetry) =
  Printf.sprintf "ops=[%s] capacity=%d symmetry=%b"
    (String.concat ";" cfg.Mcheck.Semantics.ops)
    cfg.Mcheck.Semantics.capacity symmetry

let prop_mcheck_steal_diff =
  QCheck.Test.make ~count:40
    ~name:
      "packed engines (seq-packed, steal at 1/2/4 domains) match the boxed \
       reference on complete searches"
    (QCheck.make steal_case_gen ~print:print_steal_case)
    (fun (cfg, symmetry) ->
      let go engine =
        observe_order_free
          (Mcheck.Explore.run ~max_states:50_000 ~symmetry ~engine
             ~tables:(Lazy.force mcheck_tables) ~keep_states:true cfg)
      in
      let reference = Par.Pool.with_domains 1 (fun () -> go `Seq) in
      let _, _, _, _, complete, _ = reference in
      complete
      && Par.Pool.with_domains 1 (fun () -> go `Seq_packed) = reference
      && List.for_all
           (fun d -> Par.Pool.with_domains d (fun () -> go `Steal) = reference)
           domains_swept)

(* Truncated searches visit a schedule-dependent SUBSET, but the atomic
   ticket budget makes the expansion count itself exact: explored and the
   completeness verdict still match the reference at any domain count. *)
let prop_mcheck_steal_bounded =
  QCheck.Test.make ~count:100
    ~name:"bounded steal search expands exactly max_states at 1/2/4 domains"
    (QCheck.make mcheck_case_gen ~print:(fun (cfg, max_states, symmetry) ->
         Printf.sprintf "ops=[%s] capacity=%d max_states=%d symmetry=%b"
           (String.concat ";" cfg.Mcheck.Semantics.ops)
           cfg.Mcheck.Semantics.capacity max_states symmetry))
    (fun (cfg, max_states, symmetry) ->
      let go engine =
        let r =
          Mcheck.Explore.run ~max_states ~symmetry ~engine
            ~tables:(Lazy.force mcheck_tables) cfg
        in
        r.Mcheck.Explore.explored, r.Mcheck.Explore.complete
      in
      let reference = Par.Pool.with_domains 1 (fun () -> go `Seq) in
      List.for_all
        (fun d -> Par.Pool.with_domains d (fun () -> go `Steal) = reference)
        domains_swept)

(* Coverage is recorded from inside worker domains and OR-merged; the
   merged bitmaps must be byte-identical to the sequential engine's. *)
let test_steal_coverage_matches_seq () =
  let cfg =
    { Mcheck.Semantics.nodes = 2; addrs = 1; ops = [ "load"; "store" ];
      capacity = 2; io_addrs = []; lossy = false }
  in
  let snap engine d =
    Par.Pool.with_domains d (fun () ->
        Obs.Coverage.reset ();
        ignore
          (Mcheck.Explore.run ~max_states:50_000 ~engine
             ~tables:(Lazy.force mcheck_tables) cfg);
        List.map
          (fun (tc : Obs.Coverage.table_coverage) ->
            tc.name, tc.rows, tc.covered, Bytes.to_string tc.bitmap)
          (Obs.Coverage.snapshot ()))
  in
  Obs.Coverage.with_enabled (fun () ->
      let reference = snap `Seq 1 in
      Alcotest.(check bool)
        "sequential run covered something" true
        (List.exists (fun (_, _, covered, _) -> covered > 0) reference);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf "steal coverage bitmaps at %d domains" d)
            true
            (snap `Steal d = reference))
        domains_swept;
      Obs.Coverage.reset ())

(* A seeded protocol bug: the stealing path must report the SAME
   violation — kind, detail, trace and rendered sequence chart — because
   on first contact it stops and replays the search sequentially.  This
   pins the replay wiring, not just the verdict. *)
let test_steal_seeded_bug_matches_seq () =
  let spec' =
    Protocol.Ctrl_spec.drop_scenario Protocol.Dir_controller.spec
      "readex-idone-sd-last"
  in
  let tables' = Mcheck.Semantics.load_tables_with ~dir:spec' () in
  let cfg =
    { Mcheck.Semantics.nodes = 3; addrs = 1; ops = [ "load"; "store" ];
      capacity = 3; io_addrs = []; lossy = false }
  in
  let viol engine d =
    Par.Pool.with_domains d (fun () ->
        (Mcheck.Explore.run ~max_states:200_000 ~engine ~tables:tables' cfg)
          .Mcheck.Explore.violation)
  in
  match viol `Seq 1 with
  | None -> Alcotest.fail "seeded hang not found by the reference engine"
  | Some v ->
      Alcotest.(check bool) "reference has a trace" true (v.trace <> []);
      let msc = Sim.Msc.render_run v.Mcheck.Explore.trace in
      List.iter
        (fun d ->
          match viol `Steal d with
          | None ->
              Alcotest.fail
                (Printf.sprintf "steal at %d domains missed the seeded hang" d)
          | Some w ->
              Alcotest.(check bool)
                (Printf.sprintf "identical violation at %d domains" d)
                true (w = v);
              Alcotest.(check string)
                (Printf.sprintf "identical sequence chart at %d domains" d)
                msc
                (Sim.Msc.render_run w.Mcheck.Explore.trace))
        domains_swept

(* Golden witness: the Figure 4 wedged configuration (VC2 and VC4
   mutually occupied under the paper's pre-fix assignment) survives a
   round trip through the production packing layout bit-exactly, and its
   canonical vector is stable.  Pins both the scenario and the packed
   path against drift. *)
let test_figure4_witness_packs () =
  let result, _, wedged =
    Sim.Scenario.figure4_wedged Checker.Vcassign.with_vc4
  in
  (match result with
  | Sim.Runner.Deadlock { occupancy; _ } ->
      Alcotest.(check bool) "VC2 occupied" true (List.mem_assoc "VC2" occupancy);
      Alcotest.(check bool) "VC4 occupied" true (List.mem_assoc "VC4" occupancy)
  | Sim.Runner.Quiescent _ -> Alcotest.fail "expected the Figure 4 deadlock");
  let cfg =
    { Mcheck.Semantics.nodes = 3; addrs = 2; ops = [ "load"; "store" ];
      capacity = 2; io_addrs = []; lossy = false }
  in
  let layout =
    Mcheck.Explore.layout_of_tables (Lazy.force mcheck_tables) cfg
  in
  (* the simulator can leave strings outside the model-checker vocabulary
     in flight; dictionary growth is part of what this pins *)
  let rec pack_growing l fuel =
    match Mcheck.Pack.pack l wedged with
    | v -> l, v
    | exception Mcheck.Pack.Overflow _ when fuel > 0 ->
        pack_growing (Mcheck.Pack.refresh l) (fuel - 1)
  in
  let layout, v = pack_growing layout 16 in
  Alcotest.(check bool)
    "wedged state round-trips through the packed representation" true
    (Mcheck.Pack.unpack layout v = wedged);
  Alcotest.(check bool)
    "canonical vector is reproducible" true
    (Mcheck.Pack.equal
       (Mcheck.Pack.canonical layout wedged)
       (Mcheck.Pack.canonical layout wedged))

(* The deadlock-V-vc4 seq/par regression root cause: the old level engine
   paid a Domain.spawn per BFS level.  Workers are resident now — once
   the pool is warm, repeated multi-level searches on ANY engine must not
   spawn a single additional domain. *)
let test_pool_spawns_no_new_domains () =
  let cfg =
    { Mcheck.Semantics.nodes = 2; addrs = 1; ops = [ "load"; "store" ];
      capacity = 2; io_addrs = []; lossy = false }
  in
  Par.Pool.with_domains 4 (fun () ->
      (* warm the pool to its high-water mark — a big enough region to
         clear the small-work inline fallback and actually fan out *)
      ignore (Par.Pool.map_list ~min_chunk:1 Fun.id (List.init 512 Fun.id));
      let before = Obs.Metrics.aggregate "spawn" in
      for _ = 1 to 3 do
        List.iter
          (fun engine ->
            ignore
              (Mcheck.Explore.run ~max_states:2_000 ~engine
                 ~tables:(Lazy.force mcheck_tables) cfg))
          [ `Level; `Steal ]
      done;
      Alcotest.(check int)
        "no extra Domain.spawn across repeated multi-level searches" 0
        (Obs.Metrics.aggregate "spawn" - before))

let suite =
  [
    Test_seed.to_alcotest prop_generate_diff;
    Test_seed.to_alcotest prop_monolithic_diff;
    Test_seed.to_alcotest prop_select_diff;
    Test_seed.to_alcotest prop_join_diff;
    Test_seed.to_alcotest prop_deadlock_diff;
    Test_seed.to_alcotest prop_mcheck_diff;
    Test_seed.to_alcotest prop_mcheck_steal_diff;
    Test_seed.to_alcotest prop_mcheck_steal_bounded;
    Alcotest.test_case "steal coverage bitmaps merge to sequential" `Quick
      test_steal_coverage_matches_seq;
    Alcotest.test_case "steal replays seeded bug identically" `Slow
      test_steal_seeded_bug_matches_seq;
    Alcotest.test_case "figure 4 witness packs" `Quick
      test_figure4_witness_packs;
    Alcotest.test_case "resident pool spawns no new domains" `Quick
      test_pool_spawns_no_new_domains;
  ]
