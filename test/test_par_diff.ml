(* Differential seq-vs-par properties: every parallel code path must
   produce results structurally identical to the sequential engine at
   any domain count.  Each property draws a random workload and runs it
   pinned to 1, 2 and 4 domains; any divergence — rows, statistics,
   dependency entries, VCG edges, cycles, model-checker verdicts or the
   reachable-state set itself — fails the property. *)

open Relalg

let domains_swept = [ 1; 2; 4 ]

(* Run [f] at every domain count and check all observations agree. *)
let agree f =
  match List.map (fun d -> Par.Pool.with_domains d f) domains_swept with
  | [] -> true
  | r :: rest -> List.for_all (( = ) r) rest

(* ------------------------- solver differential ------------------------ *)

let value_pool = [ "a"; "b"; "c"; "d" ]

let spec_gen =
  QCheck.Gen.(
    let nonempty_sub pool =
      let* mask = list_repeat (List.length pool) bool in
      let chosen = List.filteri (fun i _ -> List.nth mask i) pool in
      return (if chosen = [] then [ List.hd pool ] else chosen)
    in
    let* ncols = int_range 2 4 in
    let names = List.init ncols (Printf.sprintf "c%d") in
    let* cols =
      flatten_l
        (List.mapi
           (fun i name ->
             let* dom = nonempty_sub value_pool in
             return
               {
                 Solver.cname = name;
                 role = (if i < ncols - 1 then Solver.Input else Solver.Output);
                 domain = List.map (fun s -> Value.Str s) dom;
               })
           names)
    in
    let* constraints =
      flatten_l
        (List.map
           (fun name ->
             let* kind = int_bound 3 in
             let* vs = nonempty_sub value_pool in
             let* other = oneofl names in
             let e =
               match kind with
               | 0 -> Expr.True
               | 1 -> Expr.isin name vs
               | 2 -> Expr.Eq (Expr.col name, Expr.col other)
               | _ -> Expr.Not (Expr.Eq (Expr.col name, Expr.col other))
             in
             return (name, e))
           names)
    in
    return (Solver.make ~name:"rand" ~columns:cols ~constraints))

let spec_arb =
  QCheck.make spec_gen ~print:(fun s ->
      String.concat ","
        (List.map (fun c -> c.Solver.cname) (Solver.columns s)))

let observe_generation (tbl, stats) =
  ( Schema.columns (Table.schema tbl),
    Table.rows tbl,
    stats.Solver.candidates,
    stats.Solver.evaluations,
    stats.Solver.per_column )

let prop_generate_diff =
  QCheck.Test.make ~count:500
    ~name:"incremental generation identical across 1/2/4 domains" spec_arb
    (fun s -> agree (fun () -> observe_generation (Solver.generate s)))

let prop_monolithic_diff =
  QCheck.Test.make ~count:500
    ~name:"monolithic generation identical across 1/2/4 domains" spec_arb
    (fun s ->
      agree (fun () -> observe_generation (Solver.generate_monolithic s)))

(* --------------------- relational-operator differential --------------- *)

let wide_table_gen =
  QCheck.Gen.(
    let* n = int_range 0 1500 in
    let* rows =
      list_repeat n
        (let* k = oneofl value_pool in
         let* x = int_bound 9 in
         return [| Value.Str k; Value.Int x |])
    in
    return (Table.of_rows ~name:"t" (Schema.of_list [ "k"; "x" ]) rows))

let prop_select_diff =
  QCheck.Test.make ~count:100
    ~name:"parallel selection identical across 1/2/4 domains"
    (QCheck.make
       QCheck.Gen.(pair wide_table_gen (oneofl value_pool))
       ~print:(fun (t, v) ->
         Printf.sprintf "%d rows, k=%s" (Table.cardinality t) v))
    (fun (t, v) ->
      agree (fun () -> Table.rows (Ops.select (Expr.eq "k" v) t)))

let prop_join_diff =
  QCheck.Test.make ~count:100
    ~name:"parallel hash-join probe identical across 1/2/4 domains"
    (QCheck.make
       QCheck.Gen.(pair wide_table_gen wide_table_gen)
       ~print:(fun (a, b) ->
         Printf.sprintf "%d x %d rows" (Table.cardinality a)
           (Table.cardinality b)))
    (fun (a, b) ->
      let b = Ops.rename [ "k", "k"; "x", "y" ] b in
      agree (fun () -> Table.rows (Ops.equi_join ~on:[ "k", "k" ] a b)))

(* ----------------------- deadlock-check differential ------------------ *)

let assignment_gen =
  QCheck.Gen.(
    let* base = oneofl Checker.Vcassign.standard in
    let* tweaks = int_bound 3 in
    let channels =
      Checker.Vcassign.
        [ vc0; vc1; vc2; vc3; vc4 ]
    in
    let rec tweak v k =
      if k = 0 || v.Checker.Vcassign.rows = [] then return v
      else
        let* row = oneofl v.Checker.Vcassign.rows in
        let* vc = oneofl channels in
        tweak
          (Checker.Vcassign.reassign v ~msg:row.Checker.Vcassign.msg
             ~src:row.Checker.Vcassign.src ~dst:row.Checker.Vcassign.dst ~vc)
          (k - 1)
    in
    tweak base tweaks)

let nonempty_sublist_gen xs =
  QCheck.Gen.(
    let* mask = list_repeat (List.length xs) bool in
    let chosen = List.filteri (fun i _ -> List.nth mask i) xs in
    return (if chosen = [] then [ List.hd xs ] else chosen))

let deadlock_case_gen =
  QCheck.Gen.(
    let* v = assignment_gen in
    let* controllers = nonempty_sublist_gen Protocol.deadlock_controllers in
    let* placements = nonempty_sublist_gen Protocol.Topology.all_placements in
    let* interleavings = bool in
    return (v, controllers, placements, interleavings))

let observe_report (r : Checker.Deadlock.report) =
  ( List.map (fun e -> e.Checker.Dependency.dep) r.entries,
    List.map
      (fun (src, dst, label) ->
        src, dst, List.map (fun e -> e.Checker.Dependency.dep) label)
      (Vcgraph.Digraph.edges r.vcg),
    List.map (fun (c : _ Vcgraph.Cycles.cycle) -> c.nodes) r.cycles )

let prop_deadlock_diff =
  QCheck.Test.make ~count:500
    ~name:
      "dependency table, VCG edges and cycles identical across 1/2/4 domains"
    (QCheck.make deadlock_case_gen ~print:(fun (v, cs, ps, il) ->
         Printf.sprintf "%s, %d controllers, %d placements, interleavings=%b"
           v.Checker.Vcassign.name (List.length cs) (List.length ps) il))
    (fun (v, controllers, placements, interleavings) ->
      agree (fun () ->
          observe_report
            (Checker.Deadlock.analyze ~placements ~interleavings ~controllers
               v)))

(* ------------------------- mcheck differential ------------------------ *)

let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())

let mcheck_case_gen =
  QCheck.Gen.(
    let* ops = nonempty_sublist_gen [ "load"; "store" ] in
    let* evictions = bool in
    let* capacity = int_range 1 3 in
    let* max_states = int_range 60 150 in
    let* symmetry = bool in
    let ops = if evictions then ops @ [ "evict" ] else ops in
    return
      ( { Mcheck.Semantics.nodes = 2; addrs = 1; ops; capacity; io_addrs = [];
          lossy = false },
        max_states,
        symmetry ))

let observe_mcheck (r : Mcheck.Explore.result) =
  (* everything except wall-clock time *)
  ( r.explored, r.transitions, r.max_depth, r.violation, r.complete,
    r.dedup_hits, r.per_depth, r.max_frontier, r.states )

let prop_mcheck_diff =
  QCheck.Test.make ~count:500
    ~name:
      "model-checker verdict and reachable-state set identical across 1/2/4 \
       domains"
    (QCheck.make mcheck_case_gen ~print:(fun (cfg, max_states, symmetry) ->
         Printf.sprintf "ops=[%s] capacity=%d max_states=%d symmetry=%b"
           (String.concat ";" cfg.Mcheck.Semantics.ops)
           cfg.Mcheck.Semantics.capacity max_states symmetry))
    (fun (cfg, max_states, symmetry) ->
      agree (fun () ->
          observe_mcheck
            (Mcheck.Explore.run ~max_states ~symmetry
               ~tables:(Lazy.force mcheck_tables) ~keep_states:true cfg)))

let suite =
  [
    Test_seed.to_alcotest prop_generate_diff;
    Test_seed.to_alcotest prop_monolithic_diff;
    Test_seed.to_alcotest prop_select_diff;
    Test_seed.to_alcotest prop_join_diff;
    Test_seed.to_alcotest prop_deadlock_diff;
    Test_seed.to_alcotest prop_mcheck_diff;
  ]
