(* The SQL front end: lexer, parser, executor. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db =
  let d =
    Table.of_rows ~name:"D"
      (Schema.of_list [ "inmsg"; "dirst"; "dirpv"; "locmsg" ])
      (List.map Row.strings
         [
           [ "readex"; "SI"; "one"; "-" ];
           [ "readex"; "SI"; "gone"; "-" ];
           [ "readex"; "I"; "zero"; "-" ];
           [ "idone"; "Busy"; "one"; "datax" ];
         ])
  in
  (* replace the "-" placeholders with real NULLs *)
  let d =
    Table.map_rows
      (fun r ->
        Array.map (fun v -> if Value.equal v (Value.str "-") then Value.Null else v) r)
      d
  in
  let db = Database.add Database.empty d in
  Database.register_function db "isrequest" (fun v ->
      Value.equal v (Value.str "readex"))

let q src = Sql_exec.query db src

let test_lexer () =
  let toks = Sql_lexer.tokenize "SELECT a, b FROM t WHERE a = 'x y'" in
  check_int "token count" 11 (List.length toks);
  check "keywords case-insensitive" true
    (Sql_lexer.tokenize "select" = Sql_lexer.tokenize "SELECT");
  check "double-quoted accepted" true
    (List.mem (Sql_lexer.STRING "MESI") (Sql_lexer.tokenize "x = \"MESI\""));
  check "escaped quote" true
    (List.mem (Sql_lexer.STRING "o'brien") (Sql_lexer.tokenize "'o''brien'"));
  check "lex error" true
    (try ignore (Sql_lexer.tokenize "a @ b"); false
     with Sql_lexer.Lex_error _ -> true)

let test_select_where () =
  check_int "filter by literal" 3
    (Table.cardinality (q "SELECT inmsg FROM D WHERE inmsg = 'readex'"));
  check_int "in list" 2
    (Table.cardinality (q "SELECT dirpv FROM D WHERE dirpv IN ('one')"));
  check_int "neq" 1
    (Table.cardinality (q "SELECT inmsg FROM D WHERE NOT inmsg = 'readex'"));
  check_int "star" 4 (Table.cardinality (q "SELECT * FROM D"))

let test_distinct () =
  check_int "distinct collapses" 1
    (Table.cardinality (q "SELECT DISTINCT inmsg FROM D WHERE inmsg = 'readex'"))

let test_null_and_functions () =
  check_int "null comparison" 3
    (Table.cardinality (q "SELECT inmsg FROM D WHERE locmsg = NULL"));
  check_int "registered function" 3
    (Table.cardinality (q "SELECT inmsg FROM D WHERE isrequest(inmsg)"))

let test_ternary_where () =
  (* the paper's constraint syntax is usable in WHERE clauses: readex rows
     must be in SI (2 rows), all other rows must have pv one (1 row) *)
  check_int "ternary" 3
    (Table.cardinality
       (q "SELECT inmsg FROM D WHERE inmsg = 'readex' ? dirst = 'SI' : dirpv = 'one'"));
  check_int "ternary excludes readex at I" 0
    (Table.cardinality
       (q "SELECT inmsg FROM D WHERE dirst = 'I' AND (inmsg = 'readex' ? dirst = 'SI' : dirpv = 'one')"))

let test_set_operators () =
  check_int "union" 2
    (Table.cardinality
       (q "SELECT DISTINCT inmsg FROM D UNION SELECT DISTINCT inmsg FROM D WHERE inmsg = 'idone'"));
  check_int "except" 1
    (Table.cardinality
       (q "SELECT DISTINCT inmsg FROM D EXCEPT SELECT inmsg FROM D WHERE inmsg = 'readex'"));
  check_int "intersect" 1
    (Table.cardinality
       (q "SELECT DISTINCT inmsg FROM D INTERSECT SELECT inmsg FROM D WHERE isrequest(inmsg)"))

let test_create_insert_drop () =
  let db, _ = Sql_exec.exec db "CREATE TABLE V AS SELECT DISTINCT inmsg FROM D" in
  check_int "create table as" 2 (Table.cardinality (Database.find db "V"));
  let db, _ = Sql_exec.exec db "INSERT INTO V VALUES ('wb'), ('flush')" in
  check_int "insert" 4 (Table.cardinality (Database.find db "V"));
  let db, _ = Sql_exec.exec db "DROP TABLE V" in
  check "dropped" false (Database.mem db "V")

let test_is_empty () =
  check "violating query empty" true
    (Sql_exec.is_empty db
       "SELECT dirst FROM D WHERE dirst = 'SI' AND NOT dirpv IN ('one','gone')");
  check "non-empty detected" false
    (Sql_exec.is_empty db "SELECT dirst FROM D WHERE dirst = 'SI'")

let test_errors () =
  check "unknown table" true
    (try ignore (q "SELECT a FROM nosuch"); false
     with Sql_exec.Exec_error _ -> true);
  check "parse error" true
    (try ignore (Sql_parser.parse_query "SELECT FROM"); false
     with Sql_parser.Parse_error _ -> true);
  check "trailing garbage" true
    (try ignore (Sql_parser.parse_query "SELECT a FROM t t t"); false
     with Sql_parser.Parse_error _ -> true)

let test_parse_predicate () =
  let p = Sql_parser.parse_predicate "a = 'x' AND NOT b IN ('y','z')" in
  Alcotest.(check (list string)) "columns" [ "a"; "b" ] (Expr.free_columns p)

let roundtrip_queries =
  [
    "SELECT inmsg FROM D WHERE dirst = 'SI' AND dirpv = 'one'";
    "SELECT DISTINCT inmsg, dirst FROM D";
    "SELECT * FROM D WHERE NOT (inmsg = 'wb' OR dirst = 'I')";
  ]

(* Ordered comparisons, ORDER BY, LIMIT, float literals and bare boolean
   predicates — the extensions the sys. system tables lean on. *)
let ndb =
  Database.add Database.empty
    (Table.of_rows ~name:"T"
       (Schema.of_list [ "name"; "n"; "x"; "ok" ])
       [
         [| Value.str "a"; Value.Int 3; Value.Float 0.5; Value.Bool true |];
         [| Value.str "b"; Value.Int 1; Value.Float 2.5; Value.Bool false |];
         [| Value.str "c"; Value.Int 2; Value.Float 1.5; Value.Bool true |];
       ])

let nq src = Sql_exec.query ndb src

let names t =
  List.rev (Table.fold (fun acc r -> Table.cell t r "name" :: acc) [] t)

let strs l = List.map Value.str l

let test_order_limit () =
  Alcotest.(check bool)
    "order by int" true
    (names (nq "SELECT name FROM T ORDER BY n") = strs [ "b"; "c"; "a" ]);
  Alcotest.(check bool)
    "order by desc + limit" true
    (names (nq "SELECT name FROM T ORDER BY x DESC LIMIT 2")
    = strs [ "b"; "c" ]);
  check_int "limit 0" 0 (Table.cardinality (nq "SELECT * FROM T LIMIT 0"));
  check_int "limit beyond cardinality" 3
    (Table.cardinality (nq "SELECT * FROM T LIMIT 99"));
  Alcotest.(check bool)
    "multi-key order" true
    (names (nq "SELECT name FROM T ORDER BY ok DESC, n ASC")
    = strs [ "c"; "a"; "b" ])

let test_comparisons () =
  check_int "gt" 2 (Table.cardinality (nq "SELECT * FROM T WHERE n > 1"));
  check_int "le" 2 (Table.cardinality (nq "SELECT * FROM T WHERE n <= 2"));
  check_int "float literal" 2
    (Table.cardinality (nq "SELECT * FROM T WHERE x >= 1.5"));
  (* ints and floats compare numerically under Value.order *)
  check_int "int column vs float literal" 1
    (Table.cardinality (nq "SELECT * FROM T WHERE n < 1.5"));
  check_int "string ordering" 2
    (Table.cardinality (nq "SELECT * FROM T WHERE name > 'a'"))

let test_bare_bool () =
  check_int "bare boolean column" 2
    (Table.cardinality (nq "SELECT * FROM T WHERE ok"));
  check_int "negated bare boolean" 1
    (Table.cardinality (nq "SELECT * FROM T WHERE NOT ok"));
  check_int "bare boolean in conjunction" 1
    (Table.cardinality (nq "SELECT * FROM T WHERE ok AND n > 2"))

let test_sys_writes_rejected () =
  let rejected stmt =
    try
      ignore (Sql_exec.exec ndb stmt);
      false
    with Sql_exec.Exec_error msg ->
      (* the diagnostic names the reservation, not a generic failure *)
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      contains msg "read-only system table"
  in
  check "create rejected" true
    (rejected "CREATE TABLE sys.mine AS SELECT * FROM T");
  check "insert rejected" true
    (rejected "INSERT INTO sys.mine VALUES ('a')");
  check "drop rejected" true (rejected "DROP TABLE sys.runs")

let test_reparse_stability () =
  (* parse, print, reparse: same result table *)
  List.iter
    (fun src ->
      let once = q src in
      let printed = Format.asprintf "%a" Sql_ast.pp_query (Sql_parser.parse_query src) in
      let twice = q printed in
      check ("roundtrip " ^ src) true (Table.equal_as_sets once twice))
    roundtrip_queries

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "select/where" `Quick test_select_where;
    Alcotest.test_case "distinct" `Quick test_distinct;
    Alcotest.test_case "null and functions" `Quick test_null_and_functions;
    Alcotest.test_case "ternary in where" `Quick test_ternary_where;
    Alcotest.test_case "set operators" `Quick test_set_operators;
    Alcotest.test_case "create/insert/drop" `Quick test_create_insert_drop;
    Alcotest.test_case "emptiness checks" `Quick test_is_empty;
    Alcotest.test_case "errors" `Quick test_errors;
    Alcotest.test_case "order by / limit" `Quick test_order_limit;
    Alcotest.test_case "ordered comparisons" `Quick test_comparisons;
    Alcotest.test_case "bare boolean predicates" `Quick test_bare_bool;
    Alcotest.test_case "sys. writes rejected" `Quick test_sys_writes_rejected;
    Alcotest.test_case "parse predicate" `Quick test_parse_predicate;
    Alcotest.test_case "print/reparse stability" `Quick test_reparse_stability;
  ]
