(* One PRNG seed for every property-test suite in the tree.

   All qcheck suites register through {!to_alcotest} below, which derives
   each test's random state from a single session seed plus the test
   name.  The seed comes from [QCHECK_SEED] when set (so any reported
   failure replays exactly), otherwise it is drawn fresh and printed
   whenever a property fails, making every CI failure reproducible with
   one environment variable. *)

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "QCHECK_SEED=%S is not an integer\n%!" s;
          exit 2)
  | None ->
      Random.self_init ();
      Random.bits ()

(* Per-test state: independent streams per test name, all reproducible
   from the one session seed. *)
let rand_for name = Random.State.make [| seed; Hashtbl.hash name |]

let name_of (QCheck2.Test.Test cell) = QCheck2.Test.get_name cell

let to_alcotest test =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(rand_for (name_of test)) test
  in
  ( name,
    speed,
    fun arg ->
      try run arg
      with e ->
        Printf.eprintf
          "\n[test_seed] property %S failed; replay with QCHECK_SEED=%d\n%!"
          name seed;
        raise e )
