(* Property tests on the controller-specification framework: for random
   sub-specifications of the real directory controller, the generated
   table must satisfy the structural laws the methodology relies on. *)

open Relalg

let spec = Protocol.Dir_controller.spec

(* random non-empty subsequence of D's scenarios, always keeping at least
   one request scenario so the table is non-trivial *)
let scenarios_gen =
  QCheck.Gen.(
    let all = Protocol.Ctrl_spec.scenarios spec in
    let n = List.length all in
    let* mask = list_repeat n bool in
    let chosen =
      List.filteri (fun i _ -> List.nth mask i) all
    in
    return (if chosen = [] then [ List.hd all ] else chosen))

let subspec_arb =
  QCheck.make scenarios_gen ~print:(fun ss ->
      String.concat ","
        (List.map (fun s -> s.Protocol.Ctrl_spec.label) ss))

let generate scenarios =
  fst (Protocol.Ctrl_spec.generate (Protocol.Ctrl_spec.with_scenarios spec scenarios))

(* Every generated row satisfies the guard of some scenario (soundness of
   the derived column constraints). *)
let prop_rows_satisfy_some_guard =
  QCheck.Test.make ~count:20 ~name:"every generated row matches a scenario guard"
    subspec_arb
    (fun scenarios ->
      let spec' = Protocol.Ctrl_spec.with_scenarios spec scenarios in
      let tbl = generate scenarios in
      let schema = Table.schema tbl in
      let guards =
        List.map
          (fun s -> Expr.compile schema (Protocol.Ctrl_spec.guard spec' s))
          scenarios
      in
      List.for_all
        (fun row -> List.exists (fun g -> g row) guards)
        (Table.rows tbl))

(* The table is deterministic: input projection has no duplicates. *)
let prop_deterministic =
  QCheck.Test.make ~count:20 ~name:"generated tables are functions of their inputs"
    subspec_arb
    (fun scenarios ->
      let tbl = generate scenarios in
      let inputs = Ops.project Protocol.Dir_controller.input_columns tbl in
      Table.cardinality (Table.distinct inputs) = Table.cardinality tbl)

(* Dropping scenarios never adds rows (monotonicity of generation). *)
let prop_monotone =
  QCheck.Test.make ~count:15 ~name:"fewer scenarios never generate more rows"
    subspec_arb
    (fun scenarios ->
      Table.cardinality (generate scenarios)
      <= Table.cardinality (Protocol.Dir_controller.table ()))

(* Rows of a sub-specification form a subset of the full table whenever
   the kept scenarios are a prefix-closed choice... in general overlap
   with the dropped retry fallback can change outputs, so we check the
   weaker law on inputs: every input combination of the sub-table also
   appears in the full table. *)
let prop_inputs_subset =
  QCheck.Test.make ~count:15 ~name:"sub-spec inputs appear in the full table"
    subspec_arb
    (fun scenarios ->
      let sub =
        Ops.project Protocol.Dir_controller.input_columns (generate scenarios)
      in
      let full =
        Ops.project Protocol.Dir_controller.input_columns
          (Protocol.Dir_controller.table ())
      in
      Table.subset (Table.distinct sub) (Table.distinct full))

let suite =
  [
    Test_seed.to_alcotest prop_rows_satisfy_some_guard;
    Test_seed.to_alcotest prop_deterministic;
    Test_seed.to_alcotest prop_monotone;
    Test_seed.to_alcotest prop_inputs_subset;
  ]
