(* Differential tests of the cost-based planner and its vectorized
   batch engine (lib/relalg/planner.ml, lib/relalg/batch.ml) against
   the row-at-a-time reference path.

   The contract under test is strong: the planner must reproduce the
   reference engine's answers *in row order*, not just as multisets —
   select/project/limit stream in order, group and distinct keep first
   occurrences, sort is stable, and the hash join emits left-major
   pairs exactly like {!Ops.equi_join}.  The qcheck properties throw
   random logical plans (including NULL cells, ternary predicates,
   joins and set operators) at both engines; set QCHECK_SEED to replay
   a failure. *)

open Relalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ordered row-by-row equality, schema included *)
let same_table t1 t2 =
  Schema.columns (Table.schema t1) = Schema.columns (Table.schema t2)
  && Table.rows t1 = Table.rows t2

let render_rows t =
  String.concat "\n"
    (List.map
       (fun r ->
         String.concat "|" (Array.to_list (Array.map Value.to_string r)))
       (Table.rows t))

(* ------------------------------ fixture ------------------------------- *)

let mk_table name cols rows = Table.of_rows ~name (Schema.of_list cols) rows

let fixture_db =
  lazy
    (let a =
       mk_table "a" [ "k"; "x" ]
         [
           Row.strings [ "p"; "u" ]; Row.strings [ "q"; "v" ];
           Row.strings [ "p"; "v" ]; Row.strings [ "r"; "w" ];
           [| Value.Str "q"; Value.Null |]; Row.strings [ "p"; "u" ];
           [| Value.Null; Value.Str "w" |];
         ]
     in
     let b =
       mk_table "b" [ "k"; "y" ]
         [
           Row.strings [ "p"; "1" ]; Row.strings [ "q"; "2" ];
           Row.strings [ "q"; "3" ]; Row.strings [ "z"; "4" ];
         ]
     in
     Database.add (Database.add Database.empty a) b)

let diff_sql sql =
  let db = Lazy.force fixture_db in
  let q = Sql_parser.parse_query sql in
  let reference = Sql_exec.run_query_reference db q in
  let planned = Planner.run_query db q in
  if not (same_table reference planned) then
    Alcotest.failf "planner diverges from reference on %s\nreference:\n%s\nplanner:\n%s"
      sql (render_rows reference) (render_rows planned)

(* ------------------------ SQL differentials --------------------------- *)

let test_sql_differential () =
  List.iter diff_sql
    [
      "SELECT * FROM a";
      "SELECT * FROM a WHERE k = 'p'";
      "SELECT * FROM a WHERE k = 'p' OR x = 'w'";
      "SELECT x FROM a WHERE NOT k = 'q'";
      "SELECT DISTINCT x FROM a";
      "SELECT DISTINCT k, x FROM a";
      "SELECT k, COUNT(*) FROM a GROUP BY k";
      "SELECT k, x, COUNT(*) FROM a GROUP BY k, x";
      "SELECT COUNT(*) FROM a WHERE x = 'v'";
      "SELECT * FROM a ORDER BY k, x";
      "SELECT * FROM a ORDER BY x DESC, k LIMIT 3";
      "SELECT * FROM a LIMIT 2";
      "SELECT k FROM a UNION SELECT k FROM b";
      "SELECT k FROM a EXCEPT SELECT k FROM b";
      "SELECT k FROM a INTERSECT SELECT k FROM b";
    ]

(* The planner is live inside Sql_exec.run_query by default: the public
   entry point and the reference oracle must agree on a real workload. *)
let test_sql_entry_point_uses_planner () =
  (* under ASURA_PLANNER=off both sides take the reference path and the
     equality is trivially exercised; with the default the planner is
     live and must still be bit-identical *)
  if Planner.enabled () then
    check_bool "planner active without lineage" true (Planner.active ());
  let db = Lazy.force fixture_db in
  let q = Sql_parser.parse_query "SELECT k, COUNT(*) FROM a GROUP BY k" in
  check_bool "entry point matches oracle" true
    (same_table (Sql_exec.run_query db q) (Sql_exec.run_query_reference db q))

(* ----------------------- top-k under ORDER BY ------------------------- *)

let rec plan_has p (n : Planner.t) =
  p n.Planner.op || List.exists (plan_has p) n.Planner.children

let test_topk_recognized () =
  let db = Lazy.force fixture_db in
  let q = Sql_parser.parse_query "SELECT * FROM a ORDER BY k LIMIT 2" in
  let annotated = Planner.plan db (Plan.of_query q) in
  check_bool "LIMIT over ORDER BY plans as top-k" true
    (plan_has (function Planner.Topk _ -> true | _ -> false) annotated);
  check_bool "no full sort below the top-k" false
    (plan_has (function Planner.Sort _ -> true | _ -> false) annotated)

(* sys.spans is the canonical top-k consumer ("slowest spans"): the
   pushed-down limit must return exactly the reference answer. *)
let test_sys_spans_topk () =
  Obs.Config.with_enabled (fun () ->
      Obs.Trace.reset ();
      Obs.Trace.with_span "outer" (fun () ->
          List.iter
            (fun name -> Obs.Trace.with_span name (fun () -> ignore (Sys.opaque_identity 0)))
            [ "s1"; "s2"; "s3"; "s4"; "s5" ]);
      let db = Systables.attach_live Database.empty in
      Obs.Trace.reset ();
      let sql = "SELECT name, parent FROM sys.spans ORDER BY name DESC LIMIT 3" in
      let q = Sql_parser.parse_query sql in
      let reference = Sql_exec.run_query_reference db q in
      let planned = Planner.run_query db q in
      check_int "top-k returns exactly k rows" 3 (Table.cardinality planned);
      check_bool "sys.spans top-k matches reference" true
        (same_table reference planned);
      check_bool "plans as top-k" true
        (plan_has
           (function Planner.Topk (3, _) -> true | _ -> false)
           (Planner.plan db (Plan.of_query q))))

(* ----------------------- explain --analyze ---------------------------- *)

let test_analyze_est_vs_actual () =
  let db = Lazy.force fixture_db in
  let r = Planner.analyze db "SELECT DISTINCT x FROM a WHERE k = 'p'" in
  check_int "analyze executes the query" 2 (Table.cardinality r.Planner.table);
  check_int "root actual is the result cardinality" 2 r.Planner.root.Planner.actual;
  let rendered = Planner.render_report r in
  List.iter
    (fun needle -> check_bool ("report shows " ^ needle) true (contains ~needle rendered))
    [ "est="; "actual="; "cost="; "distinct"; "scan a" ];
  (* every operator in the tree was executed, so no actual is left unset *)
  let rec all_actual (n : Planner.t) =
    n.Planner.actual >= 0 && List.for_all all_actual n.Planner.children
  in
  check_bool "every operator recorded an actual row count" true
    (all_actual r.Planner.root)

let test_explain_unexecuted () =
  let db = Lazy.force fixture_db in
  let s = Planner.explain db "SELECT k FROM a WHERE x = 'v' ORDER BY k" in
  List.iter
    (fun needle -> check_bool ("explain shows " ^ needle) true (contains ~needle s))
    [ "est="; "cost="; "actual=-"; "filter"; "sort" ]

(* ----------------------- lineage fallback ----------------------------- *)

let test_lineage_forces_reference () =
  let db = Lazy.force fixture_db in
  Lineage.with_tracking (fun () ->
      check_bool "planner inactive under tracking" false (Planner.active ());
      let r = Sql_exec.query db "SELECT * FROM a WHERE k = 'p'" in
      check_bool "result carries lineage" true (Table.lineage r <> None));
  (* and a lineage-carrying input diverts even the programmatic path *)
  let traced = Lineage.with_tracking (fun () -> Ops.select Expr.True (Database.find db "a")) in
  check_bool "input has lineage" true (Table.lineage traced <> None);
  let g = Planner.group_count ~by:[ "k" ] traced in
  check_int "fallback group still answers" 4 (Table.cardinality g)

(* ----------------- join: zero-copy semijoin shape --------------------- *)

(* Joining D back to the distinct summary of its own key columns matches
   every row exactly once in order — the shape Batch.join_tables returns
   zero-copy.  It must still agree with Ops.equi_join row for row. *)
let test_join_identity_shape () =
  let d = Protocol.Dir_controller.table () in
  let on = [ ("dirst", "dirst"); ("dirpv", "dirpv") ] in
  let states = Table.distinct (Ops.project [ "dirst"; "dirpv" ] d) in
  let vec = Batch.join_tables ~on d states in
  let ref_ = Ops.equi_join ~on d states in
  check_int "every row matches once" (Table.cardinality d) (Table.cardinality vec);
  check_bool "vectorized join equals reference in order" true
    (same_table vec ref_)

(* -------------------------- random plans ------------------------------ *)

let cell_gen =
  QCheck.Gen.(
    frequency
      [ (8, map (fun s -> Value.Str s) (oneofl [ "p"; "q"; "r"; "u"; "v" ]));
        (2, return Value.Null) ])

let table_gen ~name ~cols =
  QCheck.Gen.(
    let* n = int_bound 40 in
    let* rows =
      list_repeat n
        (let* cells = flatten_l (List.map (fun _ -> cell_gen) cols) in
         return (Array.of_list cells))
    in
    return (Table.of_rows ~name (Schema.of_list cols) rows))

let pred_gen =
  QCheck.Gen.(
    let base =
      oneof
        [
          (let* c = oneofl [ "k"; "x" ] and* v = oneofl [ "p"; "q"; "u" ] in
           return (Expr.eq c v));
          (let* c = oneofl [ "k"; "x" ] and* v = oneofl [ "p"; "v" ] in
           return (Expr.neq c v));
          (let* c = oneofl [ "k"; "x" ] in
           return (Expr.eq_null c));
          (let* c = oneofl [ "k"; "x" ] in
           return (Expr.isin c [ "p"; "u" ]));
        ]
    in
    let* a = base and* b = base and* c = base in
    oneofl
      [
        a; Expr.Not a; Expr.(a &&& b); Expr.(a ||| b);
        Expr.ternary a b c; Expr.(Not (a ||| b) &&& c);
      ])

(* a chain of schema-preserving operators over [a (k, x)] *)
let chain_gen =
  QCheck.Gen.(
    let op sub =
      let* sub = sub in
      oneof
        [
          map (fun p -> Plan.Select (p, sub)) pred_gen;
          return (Plan.Distinct sub);
          return (Plan.Sort ([ ("k", `Asc); ("x", `Desc) ], sub));
          (let* n = int_bound 8 in
           return (Plan.Limit (n, sub)));
          return sub;
        ]
    in
    op (op (return (Plan.Scan "a"))))

let plan_gen =
  QCheck.Gen.(
    let* c1 = chain_gen and* c2 = chain_gen in
    oneofl
      [
        c1;
        Plan.Project ([ "k" ], c1);
        Plan.Group_count ([ "k" ], c1);
        Plan.Group_count ([ "k"; "x" ], c1);
        Plan.Count c1;
        Plan.Union (c1, c2);
        Plan.Except (c1, c2);
        Plan.Intersect (c1, c2);
        Plan.Join ([ ("k", "k") ], c1, Plan.Scan "b");
        Plan.Limit (3, Plan.Sort ([ ("x", `Asc) ], c1));
      ])

let prop_plan_differential =
  QCheck.Test.make ~count:400
    ~name:"random plans: planner equals reference engine in row order"
    (QCheck.make
       QCheck.Gen.(
         triple
           (table_gen ~name:"a" ~cols:[ "k"; "x" ])
           (table_gen ~name:"b" ~cols:[ "k"; "y" ])
           plan_gen)
       ~print:(fun (a, b, p) ->
         Printf.sprintf "a(%d rows), b(%d rows), %s" (Table.cardinality a)
           (Table.cardinality b) (Plan.explain p)))
    (fun (a, b, p) ->
      let db = Database.add (Database.add Database.empty a) b in
      let reference = Plan.execute db p in
      let planned = Planner.run_plan db p in
      same_table reference planned)

(* programmatic operators: the checker/solver-facing entry points *)
let prop_programmatic_differential =
  QCheck.Test.make ~count:300
    ~name:"programmatic select/group/distinct/join match Ops"
    (QCheck.make
       QCheck.Gen.(
         triple
           (table_gen ~name:"a" ~cols:[ "k"; "x" ])
           (table_gen ~name:"b" ~cols:[ "k"; "y" ])
           pred_gen)
       ~print:(fun (a, b, p) ->
         Printf.sprintf "a(%d rows), b(%d rows), %s" (Table.cardinality a)
           (Table.cardinality b) (Expr.to_sql p)))
    (fun (a, b, p) ->
      same_table (Planner.select p a) (Ops.select p a)
      && same_table (Planner.distinct a) (Table.distinct a)
      && Table.rows (Planner.group_count ~by:[ "k" ] a)
         = List.map
             (fun (key, n) -> Array.append key [| Value.Int n |])
             (Ops.group_count ~by:[ "k" ] a)
      && same_table
           (Planner.equi_join ~on:[ ("k", "k") ] a b)
           (Ops.equi_join ~on:[ ("k", "k") ] a b))

let suite =
  [
    Alcotest.test_case "SQL differential: planner vs reference" `Quick
      test_sql_differential;
    Alcotest.test_case "Sql_exec.run_query routes through the planner" `Quick
      test_sql_entry_point_uses_planner;
    Alcotest.test_case "LIMIT over ORDER BY becomes top-k" `Quick
      test_topk_recognized;
    Alcotest.test_case "sys.spans top-k pushes the limit below the sort" `Quick
      test_sys_spans_topk;
    Alcotest.test_case "explain --analyze reports est vs actual rows" `Quick
      test_analyze_est_vs_actual;
    Alcotest.test_case "explain renders cost estimates unexecuted" `Quick
      test_explain_unexecuted;
    Alcotest.test_case "lineage tracking falls back to the reference engine"
      `Quick test_lineage_forces_reference;
    Alcotest.test_case "semijoin-shaped hash join matches Ops row for row"
      `Quick test_join_identity_shape;
    QCheck_alcotest.to_alcotest prop_plan_differential;
    QCheck_alcotest.to_alcotest prop_programmatic_differential;
  ]
