(* Tables and relational operators. *)

open Relalg

let schema = Schema.of_list [ "m"; "s" ]
let t rows = Table.of_rows ~name:"t" schema (List.map Row.strings rows)
let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let cardinal tbl = Table.cardinality tbl

let test_construction () =
  let tbl = t [ [ "readex"; "local" ]; [ "wb"; "local" ] ] in
  check_int "cardinality" 2 (cardinal tbl);
  check_int "arity" 2 (Table.arity tbl);
  check "mem" true (Table.mem tbl (Row.strings [ "wb"; "local" ]));
  Alcotest.check_raises "arity mismatch"
    (Table.Arity_mismatch { table = "t"; expected = 2; got = 1 }) (fun () ->
      ignore (Table.add tbl (Row.strings [ "x" ])))

let test_distinct_and_sort () =
  let tbl = t [ [ "b"; "1" ]; [ "a"; "1" ]; [ "b"; "1" ] ] in
  check_int "distinct" 2 (cardinal (Table.distinct tbl));
  let sorted = Table.sort tbl in
  check "sorted first" true
    (Row.equal (List.hd (Table.rows sorted)) (Row.strings [ "a"; "1" ]))

let test_subset () =
  let small = t [ [ "a"; "1" ] ] in
  let big = t [ [ "a"; "1" ]; [ "b"; "2" ] ] in
  check "subset" true (Table.subset small big);
  check "not superset" false (Table.subset big small);
  check "equal as sets ignores order and dups" true
    (Table.equal_as_sets
       (t [ [ "a"; "1" ]; [ "b"; "2" ]; [ "a"; "1" ] ])
       (t [ [ "b"; "2" ]; [ "a"; "1" ] ]))

let test_select_project_rename () =
  let tbl = t [ [ "readex"; "local" ]; [ "data"; "home" ]; [ "wb"; "local" ] ] in
  let locals = Ops.select (Expr.eq "s" "local") tbl in
  check_int "select" 2 (cardinal locals);
  let names = Ops.project [ "m" ] locals in
  check_int "project keeps duplicates" 2 (cardinal names);
  check_int "project arity" 1 (Table.arity names);
  let renamed = Ops.rename [ "m", "msg" ] tbl in
  check "rename" true (Schema.mem (Table.schema renamed) "msg")

let test_cross () =
  let a = Table.of_rows ~name:"a" (Schema.of_list [ "x" ])
      [ Row.strings [ "1" ]; Row.strings [ "2" ] ]
  in
  let b = Table.of_rows ~name:"b" (Schema.of_list [ "y" ])
      [ Row.strings [ "p" ]; Row.strings [ "q" ]; Row.strings [ "r" ] ]
  in
  check_int "cross product size" 6 (cardinal (Ops.cross a b));
  Alcotest.check_raises "clash" (Ops.Schema_clash "x") (fun () ->
      ignore (Ops.cross a (Ops.rename [ "y", "x" ] b)))

let test_set_ops () =
  let a = t [ [ "a"; "1" ]; [ "b"; "2" ] ] in
  let b = t [ [ "b"; "2" ]; [ "c"; "3" ] ] in
  check_int "union" 3 (cardinal (Ops.union a b));
  check_int "except" 1 (cardinal (Ops.except a b));
  check_int "intersect" 1 (cardinal (Ops.intersect a b));
  check "incompatible schemas rejected" true
    (try
       ignore (Ops.union (Ops.project [ "m" ] a) b);
       false
     with Ops.Incompatible_schemas _ -> true)

let test_equi_join () =
  let v =
    Table.of_rows ~name:"v"
      (Schema.of_list [ "msg"; "vc" ])
      [ Row.strings [ "readex"; "VC0" ]; Row.strings [ "data"; "VC3" ] ]
  in
  let d =
    Table.of_rows ~name:"d"
      (Schema.of_list [ "m"; "st" ])
      [ Row.strings [ "readex"; "SI" ]; Row.strings [ "idone"; "Busy" ] ]
  in
  let j = Ops.equi_join ~on:[ "m", "msg" ] d v in
  check_int "join matches" 1 (cardinal j);
  check "joined columns" true (Schema.mem (Table.schema j) "vc");
  check "join key kept once" false (Schema.mem (Table.schema j) "msg")

let test_add_column_and_group () =
  let tbl = t [ [ "a"; "1" ]; [ "a"; "2" ]; [ "b"; "1" ] ] in
  let wide = Ops.add_column ~name:"k" (fun _ -> Value.str "x") tbl in
  check_int "added column arity" 3 (Table.arity wide);
  let counts = Ops.group_count ~by:[ "m" ] tbl in
  check_int "groups" 2 (List.length counts);
  check_int "count of a" 2 (List.assoc (Row.strings [ "a" ]) counts)

(* set-algebra properties on random small tables *)
let rows_gen =
  QCheck.Gen.(
    list_size (int_bound 8)
      (map2 (fun a b -> [ a; b ]) (oneofl [ "a"; "b"; "c" ])
         (oneofl [ "1"; "2" ])))

let table_arb =
  QCheck.make rows_gen ~print:(fun rows ->
      String.concat ";" (List.map (String.concat ",") rows))

let prop_union_commutes =
  QCheck.Test.make ~name:"union commutes (as sets)"
    (QCheck.pair table_arb table_arb) (fun (a, b) ->
      Table.equal_as_sets (Ops.union (t a) (t b)) (Ops.union (t b) (t a)))

let prop_except_disjoint =
  QCheck.Test.make ~name:"a except b is disjoint from b"
    (QCheck.pair table_arb table_arb) (fun (a, b) ->
      Table.is_empty (Ops.intersect (Ops.except (t a) (t b)) (t b)))

let prop_select_partition =
  QCheck.Test.make ~name:"select p + select (not p) = table"
    table_arb (fun rows ->
      let tbl = t rows in
      let p = Expr.eq "m" "a" in
      Table.equal_as_sets (Table.distinct tbl)
        (Ops.union (Ops.select p tbl) (Ops.select (Expr.Not p) tbl)))

let test_profile () =
  let tbl =
    Table.of_rows ~name:"P"
      (Schema.of_list [ "a"; "b" ])
      [
        [| Value.str "x"; Value.Null |];
        [| Value.str "x"; Value.str "y" |];
        [| Value.Null; Value.Null |];
      ]
  in
  let p = Profile.profile tbl in
  check_int "rows" 3 p.Profile.rows;
  check_int "null cells" 3 p.Profile.null_cells;
  check "sparsity" true (abs_float (Profile.sparsity p -. 0.5) < 1e-9);
  let a = List.hd p.Profile.per_column in
  check_int "distinct in a" 1 a.Profile.distinct;
  check "mode of a" true
    (a.Profile.most_common = Some (Value.str "x", 2));
  check "renders" true (String.length (Profile.to_string p) > 0)

let test_profile_sparse_d () =
  (* the paper: D is specified only for legal combinations and is sparse *)
  let p = Profile.profile (Protocol.Dir_controller.table ()) in
  check "D is mostly NULL" true (Profile.sparsity p > 0.4);
  check "columns an order of magnitude fewer than rows" true
    (p.Profile.rows > 10 * p.Profile.columns)

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "distinct and sort" `Quick test_distinct_and_sort;
    Alcotest.test_case "subset/containment" `Quick test_subset;
    Alcotest.test_case "select/project/rename" `Quick test_select_project_rename;
    Alcotest.test_case "cross product" `Quick test_cross;
    Alcotest.test_case "set operators" `Quick test_set_ops;
    Alcotest.test_case "equi join" `Quick test_equi_join;
    Alcotest.test_case "add_column and group_count" `Quick test_add_column_and_group;
    Alcotest.test_case "profile statistics" `Quick test_profile;
    Alcotest.test_case "D is sparse (paper claim)" `Quick test_profile_sparse_d;
    Test_seed.to_alcotest prop_union_commutes;
    Test_seed.to_alcotest prop_except_disjoint;
    Test_seed.to_alcotest prop_select_partition;
  ]
