(* The plan observatory: structural fingerprints (stability, rename /
   conjunct-order invariance, build-side and pushdown-placement
   sensitivity), the Planlog collector (recording, aggregation, JSON
   round-trip, diff semantics), the borrowed whole-column scan, and the
   deterministic plan workload behind the CI gate.

   Fingerprint-dependent tests follow the test_planner idiom: they gate
   on [Planner.active ()] so the suite stays green under
   ASURA_PLANNER=off (where the reference path records nothing). *)

open Relalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let mk_table name cols rows = Table.of_rows ~name (Schema.of_list cols) rows

let fixture_db =
  lazy
    (let a =
       mk_table "a" [ "k"; "x" ]
         [
           Row.strings [ "p"; "u" ]; Row.strings [ "q"; "v" ];
           Row.strings [ "p"; "v" ]; Row.strings [ "r"; "w" ];
           Row.strings [ "q"; "u" ]; Row.strings [ "p"; "u" ];
         ]
     in
     let b =
       mk_table "b" [ "k"; "y" ]
         [
           Row.strings [ "p"; "1" ]; Row.strings [ "q"; "2" ];
           Row.strings [ "q"; "3" ]; Row.strings [ "z"; "4" ];
         ]
     in
     Database.add (Database.add Database.empty a) b)

let fp db sql =
  Planner.fingerprint db
    (Planner.plan db (Plan.of_query (Sql_parser.parse_query sql)))

(* --------------------------- raw fingerprint -------------------------- *)

let test_fingerprint_hash () =
  let f = Obs.Planlog.fingerprint in
  check_str "deterministic" (f [ "a"; "b" ]) (f [ "a"; "b" ]);
  check_int "16 hex chars" 16 (String.length (f [ "a"; "b" ]));
  check_bool "order-sensitive" false (f [ "a"; "b" ] = f [ "b"; "a" ]);
  (* the separator keeps part boundaries from aliasing *)
  check_bool "boundary-sensitive" false (f [ "a"; "b" ] = f [ "ab" ]);
  check_bool "empty part matters" false (f [ "a"; ""; "b" ] = f [ "a"; "b" ])

(* ----------------------- structural invariances ----------------------- *)

let test_conjunct_order_invariant () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    check_str "AND reorder"
      (fp db "SELECT k FROM a WHERE k = 'p' AND x = 'u'")
      (fp db "SELECT k FROM a WHERE x = 'u' AND k = 'p'");
    check_str "operand flip (Eq commutes)"
      (fp db "SELECT k FROM a WHERE k = 'p'")
      (fp db "SELECT k FROM a WHERE 'p' = k");
    check_bool "different constant is a different plan" false
      (fp db "SELECT k FROM a WHERE k = 'p'"
      = fp db "SELECT k FROM a WHERE k = 'q'")
  end

let test_conjunct_order_property () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    let conjuncts =
      [ "k = 'p'"; "x = 'u'"; "NOT x = 'w'"; "k IN ('p', 'q')" ]
    in
    let sql cs = "SELECT k FROM a WHERE " ^ String.concat " AND " cs in
    let reference = fp db (sql conjuncts) in
    let prop perm =
      (* map the permutation indices onto the conjunct pool *)
      let cs = List.map (List.nth conjuncts) perm in
      fp db (sql cs) = reference
    in
    QCheck.Test.check_exn
      (QCheck.Test.make ~count:50 ~name:"fingerprint conjunct-permutation"
         (QCheck.make (QCheck.Gen.shuffle_l [ 0; 1; 2; 3 ]))
         prop);
    (* the pool is small enough to also check every order outright *)
    let rec permutations = function
      | [] -> [ [] ]
      | l ->
          List.concat_map
            (fun x ->
              List.map
                (fun rest -> x :: rest)
                (permutations (List.filter (fun y -> y <> x) l)))
            l
    in
    List.iter
      (fun perm ->
        check_bool
          ("permutation " ^ String.concat "," (List.map string_of_int perm))
          true (prop perm))
      (permutations [ 0; 1; 2; 3 ])
  end

let test_rename_invariant () =
  if Planner.active () then begin
    (* same table name, same structure, renamed columns: positional
       canonicalization makes the fingerprints agree *)
    let db1 =
      Database.add Database.empty
        (mk_table "t" [ "k"; "x" ]
           [ Row.strings [ "p"; "u" ]; Row.strings [ "q"; "v" ] ])
    in
    let db2 =
      Database.add Database.empty
        (mk_table "t" [ "kk"; "xx" ]
           [ Row.strings [ "p"; "u" ]; Row.strings [ "q"; "v" ] ])
    in
    check_str "renamed columns"
      (fp db1 "SELECT k FROM t WHERE x = 'u' ORDER BY k LIMIT 1")
      (fp db2 "SELECT kk FROM t WHERE xx = 'u' ORDER BY kk LIMIT 1")
  end

let node op children =
  { Planner.op; est = 0.; cost = 0.; actual = -1; ns = 0L; batches = 0;
    children }

let test_placement_sensitive () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    let pred = Expr.Eq (Expr.Col "x", Expr.Const (Value.Str "u")) in
    let scan = node (Planner.Scan "a") [] in
    let below =
      node (Planner.Project [ "x" ]) [ node (Planner.Filter pred) [ scan ] ]
    in
    let above =
      node (Planner.Filter pred) [ node (Planner.Project [ "x" ]) [ scan ] ]
    in
    check_bool "filter placement changes the fingerprint" false
      (Planner.fingerprint db below = Planner.fingerprint db above);
    check_bool "topk vs sort differ" false
      (fp db "SELECT k FROM a ORDER BY k LIMIT 2"
      = fp db "SELECT k FROM a ORDER BY k")
  end

let test_build_side_sensitive () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    let join build_left =
      node (Planner.Hash_join { on = [ ("k", "k") ]; build_left })
        [ node (Planner.Scan "a") []; node (Planner.Scan "b") [] ]
    in
    check_bool "build side changes the fingerprint" false
      (Planner.fingerprint db (join true)
      = Planner.fingerprint db (join false))
  end

(* The acceptance drill end to end: ASURA_PLAN_BUILD forces the join
   build side, and the recorded fingerprints must move. *)
let test_forced_build_side_records_differently () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    let a = Database.find db "a" and b = Database.find db "b" in
    let fps_under side =
      Unix.putenv "ASURA_PLAN_BUILD" side;
      Fun.protect
        ~finally:(fun () -> Unix.putenv "ASURA_PLAN_BUILD" "")
        (fun () ->
          Obs.Planlog.reset ();
          Obs.Config.with_enabled (fun () ->
              ignore (Planner.equi_join ~on:[ ("k", "k") ] a b));
          List.map
            (fun (e : Obs.Planlog.entry) -> e.Obs.Planlog.e_fingerprint)
            (Obs.Planlog.snapshot ()))
    in
    let left = fps_under "left" and right = fps_under "right" in
    Obs.Planlog.reset ();
    check_int "one plan each" 1 (List.length left);
    check_int "one plan each (right)" 1 (List.length right);
    check_bool "forced flip moves the fingerprint" false (left = right)
  end

(* ------------------------------ collector ----------------------------- *)

let sample_op est actual =
  {
    Obs.Planlog.op = "scan t";
    est_rows = est;
    est_cost = est;
    actual_rows = actual;
    actual_ns = 1000.;
    batches = 1;
  }

let record ?(site = "test") ?(query = "q") ?(fingerprint = "f") ops =
  Obs.Planlog.record ~site ~fingerprint ~query ~est_cost:10. ~total_ns:5000.
    ~rows_out:3 ops

let test_record_aggregates () =
  Obs.Planlog.reset ();
  Obs.Config.with_enabled (fun () ->
      record [ sample_op 10. 20 ];
      record [ sample_op 10. 20 ];
      record ~site:"other" [ sample_op 10. 20 ]);
  let snap = Obs.Planlog.snapshot () in
  check_int "two (site, fingerprint) keys" 2 (List.length snap);
  let e =
    List.find (fun (e : Obs.Planlog.entry) -> e.Obs.Planlog.e_site = "test")
      snap
  in
  check_int "execs summed" 2 e.Obs.Planlog.e_execs;
  check_int "rows summed" 6 e.Obs.Planlog.e_rows_out;
  check_int "op actuals summed" 40
    e.Obs.Planlog.e_ops.(0).Obs.Planlog.o_actual_rows;
  Obs.Planlog.reset ();
  record [ sample_op 10. 20 ];
  check_int "no recording while disabled" 0
    (List.length (Obs.Planlog.snapshot ()))

let test_misest () =
  Obs.Planlog.reset ();
  Obs.Config.with_enabled (fun () -> record [ sample_op 10. 1000 ]);
  let e = List.hd (Obs.Planlog.snapshot ()) in
  (* symmetric 1-smoothed ratio: (1000+1)/(10+1) = 91.0 *)
  Alcotest.(check (float 0.001)) "misest" 91.0 (Obs.Planlog.misest e);
  Obs.Planlog.reset ()

let test_json_roundtrip () =
  Obs.Planlog.reset ();
  Obs.Config.with_enabled (fun () ->
      record [ sample_op 10. 20; sample_op 5. 5 ];
      record ~site:"other" ~query:"q2" ~fingerprint:"g" [ sample_op 1. 1 ]);
  let snap = Obs.Planlog.snapshot () in
  Obs.Planlog.reset ();
  let back = Obs.Planlog.of_json (Obs.Planlog.entries_to_json snap) in
  check_int "entry count survives" (List.length snap) (List.length back);
  List.iter2
    (fun (a : Obs.Planlog.entry) (b : Obs.Planlog.entry) ->
      check_str "fingerprint" a.Obs.Planlog.e_fingerprint
        b.Obs.Planlog.e_fingerprint;
      check_str "site" a.Obs.Planlog.e_site b.Obs.Planlog.e_site;
      check_str "query" a.Obs.Planlog.e_query b.Obs.Planlog.e_query;
      check_int "execs" a.Obs.Planlog.e_execs b.Obs.Planlog.e_execs;
      check_int "ops" (Array.length a.Obs.Planlog.e_ops)
        (Array.length b.Obs.Planlog.e_ops))
    snap back

let entries_of f =
  Obs.Planlog.reset ();
  Obs.Config.with_enabled f;
  let snap = Obs.Planlog.snapshot () in
  Obs.Planlog.reset ();
  snap

let test_diff () =
  let old_entries =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1" [ sample_op 10. 20 ];
        record ~query:"q2" ~fingerprint:"f2" [ sample_op 10. 20 ])
  in
  let new_entries =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1-changed" [ sample_op 10. 20 ];
        record ~query:"q3" ~fingerprint:"f3" [ sample_op 10. 20 ])
  in
  let changes, unchanged = Obs.Planlog.diff old_entries new_entries in
  check_int "q1 changed, q2 removed, q3 added" 3 (List.length changes);
  check_int "nothing unchanged" 0 unchanged;
  let kinds =
    List.map
      (fun (c : Obs.Planlog.change) ->
        match (c.Obs.Planlog.before, c.Obs.Planlog.after) with
        | Some _, Some _ -> "changed"
        | Some _, None -> "removed"
        | None, Some _ -> "added"
        | None, None -> "?")
      changes
  in
  check_bool "one of each kind" true
    (List.sort compare kinds = [ "added"; "changed"; "removed" ]);
  (* identical structure at different speeds diffs clean: rebuild the
     same records (fresh timings/exec counts notwithstanding) *)
  let again =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1" [ sample_op 10. 20 ];
        record ~query:"q1" ~fingerprint:"f1" [ sample_op 10. 20 ];
        record ~query:"q2" ~fingerprint:"f2" [ sample_op 10. 20 ])
  in
  let changes, unchanged = Obs.Planlog.diff old_entries again in
  check_int "timings and exec counts are not compared" 0
    (List.length changes);
  check_int "both plans unchanged" 2 unchanged

let test_render_change () =
  let old_entries =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1" [ sample_op 10. 20 ])
  in
  let new_entries =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1x" [ sample_op 10. 40 ])
  in
  let changes, _ = Obs.Planlog.diff old_entries new_entries in
  let text = String.concat "" (List.map Obs.Planlog.render_change changes) in
  let contains needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i =
      i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "names both fingerprints" true (contains "f1" && contains "f1x");
  check_bool "shows est vs actual" true
    (contains "est=" && contains "actual=")

(* ------------------------- sys.plans material ------------------------- *)

let test_systables_shape () =
  let entries =
    entries_of (fun () ->
        record ~query:"q1" ~fingerprint:"f1" [ sample_op 10. 20; sample_op 5. 5 ])
  in
  let plans = Systables.plans_of entries in
  check_str "table name" "sys.plans" (Table.name plans);
  check_int "one row per entry" 1 (Table.cardinality plans);
  check_bool "schema" true
    (Schema.columns (Table.schema plans)
    = [ "fingerprint"; "site"; "query"; "est_cost"; "execs"; "total_ms";
        "rows_out"; "misest" ]);
  let ops = Systables.plan_ops_of entries in
  check_str "ops table name" "sys.plan_ops" (Table.name ops);
  check_int "one row per operator" 2 (Table.cardinality ops);
  check_bool "ops schema" true
    (Schema.columns (Table.schema ops)
    = [ "fingerprint"; "site"; "seq"; "op"; "est_rows"; "est_cost";
        "actual_rows"; "actual_ms"; "batches" ])

(* ------------------------- borrowed table scan ------------------------ *)

let metric_value key =
  match
    List.find_opt
      (fun (s : Obs.Metrics.stat) ->
        s.Obs.Metrics.s_registry = "relalg" && s.Obs.Metrics.s_name = key)
      (Obs.Metrics.snapshot ())
  with
  | Some s -> s.Obs.Metrics.s_value
  | None -> 0.

let test_borrowed_scan () =
  let db = Lazy.force fixture_db in
  let a = Database.find db "a" in
  (* round-trip: the borrowed single-batch scan drains back to the same
     rows in the same order *)
  let back = Batch.to_table ~name:"a" (Batch.of_table a) in
  check_bool "borrow round-trips" true (Table.rows back = Table.rows a);
  Obs.Config.with_enabled (fun () ->
      let before = metric_value "batch.bytes_borrowed" in
      check_int "count drains the borrowed batch" (Table.cardinality a)
        (Batch.count (Batch.of_table a));
      let after = metric_value "batch.bytes_borrowed" in
      check_bool "borrowed bytes counted, not copied" true (after > before))

(* -------------------------- workload & gating ------------------------- *)

let test_planner_off_records_nothing () =
  Unix.putenv "ASURA_PLANNER" "off";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "ASURA_PLANNER" "")
    (fun () ->
      let db = Lazy.force fixture_db in
      let snap =
        entries_of (fun () ->
            ignore (Sql_exec.query db "SELECT k FROM a WHERE x = 'u'");
            ignore
              (Planner.equi_join ~on:[ ("k", "k") ] (Database.find db "a")
                 (Database.find db "b")))
      in
      check_int "reference path leaves the plan log empty" 0
        (List.length snap))

let test_workload_deterministic () =
  if Planner.active () then begin
    let db = Protocol.database () in
    let snap =
      entries_of (fun () ->
          Systables.run_plan_workload db;
          Systables.run_plan_workload db)
    in
    check_bool "workload recorded plans" true (snap <> []);
    List.iter
      (fun (e : Obs.Planlog.entry) ->
        check_str "all under the workload site" Systables.plan_workload_site
          e.Obs.Planlog.e_site;
        (* two runs, identical fingerprints: every entry merged to 2 *)
        check_int ("stable fingerprint for " ^ e.Obs.Planlog.e_query) 2
          e.Obs.Planlog.e_execs)
      snap
  end

(* Golden fingerprints of the committed bench/PLANS.json baseline: if
   one of these moves, the planner's physical choices changed and the
   baseline (plus this list) must be regenerated deliberately —
   `asura plan snapshot` then `asura plan diff` to see what moved. *)
let test_workload_golden () =
  if Planner.active () then begin
    Unix.putenv "ASURA_PLAN_BUILD" "";
    let db = Protocol.database () in
    let snap = entries_of (fun () -> Systables.run_plan_workload db) in
    let fps =
      List.map
        (fun (e : Obs.Planlog.entry) ->
          (e.Obs.Planlog.e_query, e.Obs.Planlog.e_fingerprint))
        snap
    in
    List.iter
      (fun (query, golden) ->
        match List.assoc_opt query fps with
        | None -> Alcotest.failf "workload lost query %s" query
        | Some got -> check_str query golden got)
      [
        ("SELECT * FROM D WHERE inmsg = 'readex'", "bc9812e327582277");
        ("SELECT DISTINCT locmsg FROM D ORDER BY locmsg", "7a94ec1acb571ae7");
        ( "SELECT dirst, dirpv FROM D WHERE dirst = 'MESI' AND NOT dirpv = \
           'one'",
          "f7d77e8427c1ca3a" );
        ( "SELECT inmsg, COUNT(*) FROM D GROUP BY inmsg ORDER BY count DESC \
           LIMIT 5",
          "ca4bcb66a94977cd" );
        ("distinct", "9283480963e69406");
        ("group count by [inmsg, dirst]", "4224a62f3b622ea8");
        ("join [dirst=dirst, dirpv=dirpv]", "4f285991ed456563");
      ]
  end

let test_explain_v2 () =
  if Planner.active () then begin
    let db = Lazy.force fixture_db in
    let r = Planner.analyze db "SELECT k FROM a WHERE x = 'u'" in
    Obs.Planlog.reset ();
    check_int "fingerprint present" 16 (String.length r.Planner.fingerprint);
    match Planner.to_json r with
    | Obs.Json.Obj members ->
        check_bool "schema bumped" true
          (List.assoc_opt "schema" members
          = Some (Obs.Json.Str "asura-explain/2"));
        check_bool "fingerprint member" true
          (List.assoc_opt "fingerprint" members
          = Some (Obs.Json.Str r.Planner.fingerprint))
    | _ -> Alcotest.fail "explain --analyze --json is not an object"
  end

let suite =
  [
    Alcotest.test_case "fingerprint hash" `Quick test_fingerprint_hash;
    Alcotest.test_case "conjunct order invariant" `Quick
      test_conjunct_order_invariant;
    Alcotest.test_case "conjunct permutations (exhaustive)" `Quick
      test_conjunct_order_property;
    Alcotest.test_case "column rename invariant" `Quick test_rename_invariant;
    Alcotest.test_case "pushdown placement sensitive" `Quick
      test_placement_sensitive;
    Alcotest.test_case "build side sensitive" `Quick test_build_side_sensitive;
    Alcotest.test_case "ASURA_PLAN_BUILD flips recorded fingerprints" `Quick
      test_forced_build_side_records_differently;
    Alcotest.test_case "record aggregates by (site, fingerprint)" `Quick
      test_record_aggregates;
    Alcotest.test_case "misest ratio" `Quick test_misest;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "diff by (site, query)" `Quick test_diff;
    Alcotest.test_case "render change names fingerprints" `Quick
      test_render_change;
    Alcotest.test_case "sys.plans / sys.plan_ops shape" `Quick
      test_systables_shape;
    Alcotest.test_case "borrowed whole-column scan" `Quick test_borrowed_scan;
    Alcotest.test_case "ASURA_PLANNER=off records nothing" `Quick
      test_planner_off_records_nothing;
    Alcotest.test_case "plan workload is deterministic" `Quick
      test_workload_deterministic;
    Alcotest.test_case "plan workload golden fingerprints" `Quick
      test_workload_golden;
    Alcotest.test_case "explain analyze is asura-explain/2" `Quick
      test_explain_v2;
  ]
