(* The constraint solver: incremental vs monolithic table generation. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let v = Value.str

let small_spec =
  Solver.make ~name:"toy"
    ~columns:
      [
        { Solver.cname = "inmsg"; role = Solver.Input;
          domain = [ v "read"; v "wb" ] };
        { Solver.cname = "dirst"; role = Solver.Input;
          domain = [ v "I"; v "SI"; v "MESI" ] };
        { Solver.cname = "out"; role = Solver.Output;
          domain = [ Value.Null; v "mread"; v "mwrite" ] };
      ]
    ~constraints:
      [
        ( "dirst",
          Expr.(
            ternary (eq "inmsg" "wb") (eq "dirst" "MESI")
              (isin "dirst" [ "I"; "SI" ])) );
        ( "out",
          Expr.(
            ternary (eq "inmsg" "read") (eq "out" "mread") (eq "out" "mwrite")) );
      ]

let test_generate () =
  let tbl, stats = Solver.generate small_spec in
  (* read x {I, SI} + wb x {MESI} = 3 rows *)
  check_int "rows" 3 (Table.cardinality tbl);
  check_int "columns" 3 (Table.arity tbl);
  check "some candidates pruned" true (stats.Solver.candidates > 3);
  check_int "per-column entries" 3 (List.length stats.Solver.per_column)

let test_monolithic_agrees () =
  let inc, _ = Solver.generate small_spec in
  let mono, _ = Solver.generate_monolithic small_spec in
  check "same table both strategies" true (Table.equal_as_sets inc mono)

let test_incremental_cheaper () =
  let _, si = Solver.generate small_spec in
  let _, sm = Solver.generate_monolithic small_spec in
  check "incremental materializes fewer candidates" true
    (si.Solver.candidates <= sm.Solver.candidates);
  check_int "monolithic candidates = search space"
    (Solver.search_space small_spec) sm.Solver.candidates

let test_inconsistent_constraints () =
  let spec =
    Solver.make ~name:"empty"
      ~columns:
        [ { Solver.cname = "a"; role = Solver.Input; domain = [ v "x" ] } ]
      ~constraints:[ "a", Expr.eq "a" "y" ]
  in
  let tbl, _ = Solver.generate spec in
  check "inconsistent constraints give zero rows" true (Table.is_empty tbl)

let test_unconstrained_column () =
  let spec =
    Solver.make ~name:"free"
      ~columns:
        [
          { Solver.cname = "a"; role = Solver.Input; domain = [ v "x"; v "y" ] };
          { Solver.cname = "b"; role = Solver.Output; domain = [ v "p"; v "q" ] };
        ]
      ~constraints:[]
  in
  let tbl, _ = Solver.generate spec in
  check_int "full cross product" 4 (Table.cardinality tbl)

let test_validation () =
  let col n = { Solver.cname = n; role = Solver.Input; domain = [ v "x" ] } in
  check "unknown constrained column" true
    (try
       ignore
         (Solver.make ~name:"bad" ~columns:[ col "a" ]
            ~constraints:[ "zz", Expr.True ]);
       false
     with Solver.Invalid_spec _ -> true);
  check "duplicate column" true
    (try
       ignore (Solver.make ~name:"bad" ~columns:[ col "a"; col "a" ] ~constraints:[]);
       false
     with Solver.Invalid_spec _ -> true);
  check "empty domain" true
    (try
       ignore
         (Solver.make ~name:"bad"
            ~columns:[ { Solver.cname = "a"; role = Solver.Input; domain = [] } ]
            ~constraints:[]);
       false
     with Solver.Invalid_spec _ -> true)

(* Random specs: both strategies must always agree.  Columns get small
   domains and constraints relating neighbouring columns. *)
let random_spec_gen =
  let open QCheck.Gen in
  let domain = [ v "p"; v "q"; v "r" ] in
  let* n_cols = int_range 2 4 in
  let cols =
    List.init n_cols (fun i ->
        {
          Solver.cname = Printf.sprintf "c%d" i;
          role = (if i < n_cols - 1 then Solver.Input else Solver.Output);
          domain;
        })
  in
  let atom_for i =
    let col = Printf.sprintf "c%d" i in
    oneof
      [
        map (fun s -> Expr.eq col s) (oneofl [ "p"; "q"; "r" ]);
        map (fun s -> Expr.neq col s) (oneofl [ "p"; "q"; "r" ]);
        return Expr.True;
      ]
  in
  let* constraints =
    flatten_l
      (List.init n_cols (fun i ->
           let* mine = atom_for i in
           let* j = int_bound (n_cols - 1) in
           let* other = atom_for j in
           return (Printf.sprintf "c%d" i, Expr.Or (mine, other))))
  in
  return (Solver.make ~name:"rand" ~columns:cols ~constraints)

let prop_strategies_agree =
  QCheck.Test.make ~count:50 ~name:"incremental = monolithic on random specs"
    (QCheck.make random_spec_gen)
    (fun spec ->
      let a, _ = Solver.generate spec in
      let b, _ = Solver.generate_monolithic spec in
      Table.equal_as_sets a b)

let suite =
  [
    Alcotest.test_case "incremental generation" `Quick test_generate;
    Alcotest.test_case "monolithic agreement" `Quick test_monolithic_agrees;
    Alcotest.test_case "incremental prunes earlier" `Quick test_incremental_cheaper;
    Alcotest.test_case "inconsistent constraints" `Quick test_inconsistent_constraints;
    Alcotest.test_case "unconstrained columns" `Quick test_unconstrained_column;
    Alcotest.test_case "spec validation" `Quick test_validation;
    Test_seed.to_alcotest prop_strategies_agree;
  ]
