(* The sys.* system tables: live snapshots, manifest ingestion, the
   SQL-vs-report coverage parity the feature promises, and scheduling
   determinism of the snapshots. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let small_cfg =
  {
    Mcheck.Semantics.nodes = 2;
    addrs = 1;
    ops = [ "load"; "store" ];
    capacity = 3;
    io_addrs = [];
    lossy = false;
  }

(* Explore the full (small) state space with coverage armed; the budget
   is far above the 2.4k reachable states, so the fired-transition set
   is schedule-independent.  [clear] (not [reset]) first: earlier suites
   register seeded-bug table variants whose shapes would otherwise leak
   into the snapshot; the fresh [load_tables] re-registers the real
   ones. *)
let explore_with_coverage ~domains () =
  Obs.Coverage.clear ();
  Obs.Coverage.with_enabled (fun () ->
      Par.Pool.with_domains domains (fun () ->
          ignore
            (Mcheck.Explore.run ~max_states:50_000
               ~tables:(Mcheck.Semantics.load_tables ()) small_cfg)))

(* ---------------------- sys.coverage golden rows ---------------------- *)

let test_coverage_golden () =
  explore_with_coverage ~domains:1 ();
  let snap = Obs.Coverage.snapshot () in
  check "mcheck registered coverage" true (snap <> []);
  let t = Systables.coverage () in
  Obs.Coverage.clear ();
  (* one row per controller-table row, across every registered table *)
  let total =
    List.fold_left
      (fun acc (tc : Obs.Coverage.table_coverage) -> acc + tc.rows)
      0 snap
  in
  check_int "one sys.coverage row per table row" total (Table.cardinality t);
  (* the bitmaps were recorded against the figure-4 controller tables,
     so each registered name resolves and its row count is the golden
     generated-table cardinality — and every row decodes *)
  List.iter
    (fun (tc : Obs.Coverage.table_coverage) ->
      match Protocol.find tc.name with
      | None -> Alcotest.failf "unknown controller %s in coverage" tc.name
      | Some c ->
          check_int
            (tc.name ^ " rows match the generated table")
            (Table.cardinality (Protocol.Ctrl_spec.table c.Protocol.spec))
            tc.rows)
    snap;
  Table.iter
    (fun row ->
      match row.(3) with
      | Value.Str _ -> ()
      | v ->
          Alcotest.failf "row did not decode: %s"
            (Format.asprintf "%a" Value.pp v))
    t;
  (* parity with the report: uncovered counts computed by SQL equal the
     bitmap arithmetic asura report renders *)
  let db = Database.add_system Database.empty t in
  let counted =
    Table.fold
      (fun acc row ->
        match (row.(0), row.(1)) with
        | Value.Str name, Value.Int n -> (name, n) :: acc
        | _ -> acc)
      []
      (Sql_exec.query db
         "SELECT table_name, COUNT(*) FROM sys.coverage WHERE NOT covered \
          GROUP BY table_name")
  in
  List.iter
    (fun (tc : Obs.Coverage.table_coverage) ->
      let uncovered = tc.rows - tc.covered in
      let got = Option.value ~default:0 (List.assoc_opt tc.name counted) in
      check_int (tc.name ^ " uncovered via SQL") uncovered got)
    snap

(* ----------------- scheduling determinism of snapshots ---------------- *)

let test_domains_bit_identical () =
  explore_with_coverage ~domains:1 ();
  let t1 = Systables.coverage () in
  explore_with_coverage ~domains:4 ();
  let t4 = Systables.coverage () in
  Obs.Coverage.clear ();
  check_str "sys.coverage identical at 1 and 4 domains" (Table.to_string t1)
    (Table.to_string t4);
  check_str "JSON dump identical too"
    (Obs.Json.to_string (Systables.table_to_json t1))
    (Obs.Json.to_string (Systables.table_to_json t4))

(* ------------------------- sys.spans parents -------------------------- *)

let test_span_parents () =
  Obs.Config.with_enabled (fun () ->
      Obs.Trace.reset ();
      Obs.Trace.with_span "outer" (fun () ->
          Obs.Trace.with_span "mid" (fun () ->
              Obs.Trace.with_span "inner" (fun () -> ()));
          Obs.Trace.with_span "sibling" (fun () -> ()));
      let t = Systables.spans () in
      Obs.Trace.reset ();
      let parent_of name =
        Table.fold
          (fun acc row ->
            if row.(0) = Value.Str name then Some row.(2) else acc)
          None t
      in
      check "outer is a root" true (parent_of "outer" = Some Value.Null);
      check "mid under outer" true (parent_of "mid" = Some (Value.Str "outer"));
      check "inner under mid" true (parent_of "inner" = Some (Value.Str "mid"));
      check "sibling under outer" true
        (parent_of "sibling" = Some (Value.Str "outer")))

(* ------------------- manifest -> sys.runs round trip ------------------ *)

(* Floats are drawn as n/16 so the JSON printer/parser round-trips them
   exactly. *)
let gen_manifest =
  QCheck2.Gen.(
    let name = oneofl [ "mcheck"; "invariants"; "deadlock"; "simulate" ] in
    let q16 = map (fun n -> float_of_int n /. 16.) (int_range 0 4096) in
    let rev = option (oneofl [ "abc123"; "deadbeef" ]) in
    map
      (fun (((cmd, rev), (elapsed, sps)), (covered, rows)) ->
        let pct =
          if rows = 0 then 100.
          else float_of_int covered *. 100. /. float_of_int rows
        in
        ( cmd,
          rev,
          elapsed,
          sps,
          covered,
          rows,
          Obs.Json.Obj
            ([
               ("schema", Obs.Json.Str "asura-run/1");
               ("cmd", Obs.Json.Str cmd);
               ("argv", Obs.Json.List [ Obs.Json.Str "asura"; Obs.Json.Str cmd ]);
               ("date", Obs.Json.Str "2026-08-08T00:00:00Z");
             ]
            @ (match rev with
              | Some r -> [ ("git_rev", Obs.Json.Str r) ]
              | None -> [])
            @ [
                ("elapsed_s", Obs.Json.Float elapsed);
                ( "coverage",
                  Obs.Json.Obj
                    [
                      ("covered", Obs.Json.Int covered);
                      ("rows", Obs.Json.Int rows);
                      ("percent", Obs.Json.Float pct);
                    ] );
                ( "metrics",
                  Obs.Json.Obj
                    [
                      ( "mcheck",
                        Obs.Json.Obj
                          [
                            ( "gauges",
                              Obs.Json.Obj
                                [
                                  ( "states_per_sec",
                                    Obs.Json.Obj
                                      [
                                        ("value", Obs.Json.Float sps);
                                        ("max", Obs.Json.Float sps);
                                      ] );
                                ] );
                          ] );
                    ] );
              ]) ))
      (pair
         (pair (pair name rev) (pair q16 q16))
         (pair (int_range 0 64) (int_range 64 128))))

let prop_manifest_roundtrip =
  QCheck2.Test.make ~count:50 ~name:"manifest -> sys.runs -> JSON round trip"
    gen_manifest
    (fun (cmd, rev, elapsed, sps, covered, rows, doc) ->
      (* the manifest itself must survive print/parse *)
      let doc = Obs.Json.parse_exn (Obs.Json.to_string doc) in
      let t = Systables.runs [ ("m.json", doc) ] in
      let cell col = Table.cell t (Table.get t 0) col in
      Table.cardinality t = 1
      && cell "file" = Value.Str "m.json"
      && cell "cmd" = Value.Str cmd
      && cell "argv" = Value.Str ("asura " ^ cmd)
      && cell "git_rev"
         = (match rev with Some r -> Value.Str r | None -> Value.Null)
      && cell "elapsed_s" = Value.Float elapsed
      && cell "covered" = Value.Int covered
      && cell "rows" = Value.Int rows
      && cell "states_per_sec" = Value.Float sps
      &&
      (* and the whole table survives the JSON dump *)
      let j =
        Obs.Json.parse_exn
          (Obs.Json.to_string (Systables.table_to_json t))
      in
      match Option.bind (Obs.Json.member "rows" j) Obs.Json.to_list with
      | Some [ Obs.Json.List cells ] ->
          List.mem (Obs.Json.Str cmd) cells
          && List.mem (Obs.Json.Float elapsed) cells
      | _ -> false)

(* ------------------------------ sys.bench ----------------------------- *)

let bench_doc =
  Obs.Json.parse_exn
    {|{"schema":"asura-bench/3","date":"2026-08-08",
       "pairs":[{"name":"gen","seq_ns":100.0,"par_ns":50.0,"domains":4,"speedup":2.0},
                {"name":"dead","seq_ns":100.0,"par_ns":200.0,"domains":4,"speedup":0.5}],
       "representation":[{"name":"scan","columnar_ns":10.0,"listrep_ns":40.0,"speedup":4.0}]}|}

let test_bench_regressions () =
  let t = Systables.bench [ ("b.json", bench_doc) ] in
  check_int "three bench rows" 3 (Table.cardinality t);
  let db = Database.add_system Database.empty t in
  let reg =
    Sql_exec.query db
      "SELECT name, speedup FROM sys.bench WHERE regression ORDER BY speedup"
  in
  check_int "one regression" 1 (Table.cardinality reg);
  check "the sub-1.0 pair" true
    (Table.cell reg (Table.get reg 0) "name" = Value.Str "dead")

(* --------------------------- namespace guard -------------------------- *)

let test_sys_prefix_reserved () =
  let t = Table.create ~name:"sys.mine" (Schema.of_list [ "a" ]) in
  check "user add rejected" true
    (try
       ignore (Database.add Database.empty t);
       false
     with Database.Reserved_name _ -> true);
  check "system add allowed" true
    (Database.mem (Database.add_system Database.empty t) "sys.mine");
  check "mentions_sys positive" true
    (Systables.mentions_sys "SELECT * FROM sys.runs");
  check "mentions_sys is word-anchored" false
    (Systables.mentions_sys "SELECT * FROM analysys.runs")

let suite =
  [
    Alcotest.test_case "sys.coverage golden rows" `Quick test_coverage_golden;
    Alcotest.test_case "snapshots domain-count independent" `Quick
      test_domains_bit_identical;
    Alcotest.test_case "sys.spans parent reconstruction" `Quick
      test_span_parents;
    QCheck_alcotest.to_alcotest prop_manifest_roundtrip;
    Alcotest.test_case "sys.bench regressions" `Quick test_bench_regressions;
    Alcotest.test_case "sys. prefix reserved" `Quick test_sys_prefix_reserved;
  ]
