(* Flight-recorder tests: ring wrap-around bookkeeping, JSON
   round-tripping, the order-free seq-vs-steal determinism contract,
   the disable escape hatch and the signal-drain arming. *)

let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())
let domains_swept = [ 1; 2; 4 ]

(* Every test runs against a freshly-reset recorder (set_capacity zeroes
   all rings) and restores the default capacity and enabled state on the
   way out, so recorder state never leaks between suites. *)
let with_recorder ?(capacity = 4096) f =
  let was_on = Obs.Flightrec.on () in
  Obs.Flightrec.enable ();
  Obs.Flightrec.set_capacity capacity;
  Fun.protect
    ~finally:(fun () ->
      Obs.Flightrec.set_capacity 4096;
      if not was_on then Obs.Flightrec.disable ())
    f

(* ---------------------------- wrap-around ----------------------------- *)

let test_wraparound () =
  with_recorder ~capacity:16 (fun () ->
      for i = 1 to 50 do
        Obs.Flightrec.record ~tag:Obs.Flightrec.tag_expand ~a:i ()
      done;
      let evs = Obs.Flightrec.drain () in
      Alcotest.(check int) "drain keeps exactly the capacity" 16
        (List.length evs);
      Alcotest.(check int) "total counts every write" 50
        (Obs.Flightrec.total ());
      Alcotest.(check int) "dropped = total - surviving" 34
        (Obs.Flightrec.dropped ());
      Alcotest.(check (list int))
        "the newest window survives, oldest-first"
        (List.init 16 (fun k -> 35 + k))
        (List.map (fun e -> e.Obs.Flightrec.a) evs);
      let rec monotone = function
        | a :: (b :: _ as rest) ->
            Int64.compare a.Obs.Flightrec.t_ns b.Obs.Flightrec.t_ns <= 0
            && monotone rest
        | _ -> true
      in
      Alcotest.(check bool) "reconstructed stamps are monotone" true
        (monotone evs))

(* ------------------------------- JSON --------------------------------- *)

let test_json_round_trip () =
  with_recorder (fun () ->
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_expand ~a:3 ~b:7 ();
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_dedup ~a:3 ~b:1 ();
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_stop
        ~a:Obs.Flightrec.stop_budget ~b:42 ();
      let docs = Obs.Flightrec.of_json (Obs.Flightrec.to_json ()) in
      Alcotest.(check (list string))
        "tags survive the manifest round trip"
        [ "expand"; "dedup"; "stop" ]
        (List.map (fun d -> d.Obs.Flightrec.d_tag) docs);
      Alcotest.(check (list int)) "payloads survive" [ 7; 1; 42 ]
        (List.map (fun d -> d.Obs.Flightrec.d_b) docs);
      (* re-serializing parsed events is a fixpoint: `events dump --runs`
         emits the same shape as a live dump *)
      let again =
        Obs.Flightrec.of_json (Obs.Flightrec.docs_to_json ~dropped:0 docs)
      in
      Alcotest.(check bool) "docs_to_json round-trips" true (again = docs))

(* --------------------- order-free determinism ------------------------- *)

(* Only the order-free projections of the stream are part of the
   determinism contract: per-tag counts for the tags whose cause is
   deterministic (every visited state of a complete search is expanded
   exactly once in any schedule) and per-rule firing counts.  Steal and
   compact events are scheduling-dependent and excluded. *)
let observe_events () =
  let evs = Obs.Flightrec.drain () in
  let deterministic =
    Obs.Flightrec.[ tag_expand; tag_fire; tag_dedup ]
  in
  ( List.filter
      (fun (t, _) -> List.mem t deterministic)
      (Obs.Flightrec.counts_by_tag evs),
    Obs.Flightrec.fire_counts evs )

let test_order_free_determinism () =
  let cfg =
    { Mcheck.Semantics.nodes = 2; addrs = 1; ops = [ "load"; "store" ];
      capacity = 1; io_addrs = []; lossy = false }
  in
  ignore (Lazy.force mcheck_tables);
  with_recorder ~capacity:(1 lsl 16) (fun () ->
      let go engine d =
        Par.Pool.with_domains d (fun () ->
            Obs.Flightrec.reset ();
            let r =
              Mcheck.Explore.run ~max_states:50_000 ~engine
                ~tables:(Lazy.force mcheck_tables) cfg
            in
            Alcotest.(check bool) "search is complete" true
              r.Mcheck.Explore.complete;
            observe_events ())
      in
      let reference = go `Seq 1 in
      let counts, fires = reference in
      Alcotest.(check bool) "reference recorded expansions and firings" true
        (counts <> [] && fires <> []);
      List.iter
        (fun d ->
          Alcotest.(check bool)
            (Printf.sprintf
               "steal event projections match the reference at %d domains" d)
            true
            (go `Steal d = reference))
        domains_swept)

(* --------------------------- escape hatch ----------------------------- *)

let test_with_disabled () =
  with_recorder (fun () ->
      let before = Obs.Flightrec.total () in
      Obs.Flightrec.with_disabled (fun () ->
          Obs.Flightrec.record ~tag:Obs.Flightrec.tag_expand ());
      Alcotest.(check int) "no writes while disabled" before
        (Obs.Flightrec.total ());
      Alcotest.(check bool) "recording restored" true (Obs.Flightrec.on ());
      (match Obs.Flightrec.with_disabled (fun () -> raise Exit) with
      | exception Exit -> ()
      | () -> Alcotest.fail "expected Exit to escape with_disabled");
      Alcotest.(check bool) "restored after an exception" true
        (Obs.Flightrec.on ()))

(* ------------------------------ signals ------------------------------- *)

(* Actually delivering SIGINT would exit the test runner; what the test
   can pin is that arming installs real handlers on both signals (so an
   interrupt becomes an orderly exit whose at_exit manifest write drains
   the rings) and that re-arming is idempotent. *)
let test_signal_arming () =
  Obs.Flightrec.arm_signal_drain ();
  let check_installed name signo =
    let prev = Sys.signal signo Sys.Signal_default in
    (match prev with
    | Sys.Signal_handle _ -> ()
    | Sys.Signal_default | Sys.Signal_ignore ->
        Alcotest.failf "%s has no drain handler installed" name);
    Sys.set_signal signo prev
  in
  check_installed "SIGINT" Sys.sigint;
  check_installed "SIGTERM" Sys.sigterm;
  Obs.Flightrec.arm_signal_drain ()

(* --------------------------- sys.events ------------------------------- *)

let test_sys_events_table () =
  with_recorder (fun () ->
      Obs.Flightrec.record ~tag:Obs.Flightrec.tag_stop
        ~a:Obs.Flightrec.stop_complete ~b:5 ();
      let t = Systables.events () in
      Alcotest.(check int) "one row per surviving event" 1
        (Relalg.Table.cardinality t);
      let db = Relalg.Database.replace_system Relalg.Database.empty t in
      let out =
        Relalg.Sql_exec.query db
          "SELECT detail FROM sys.events WHERE tag = 'stop'"
      in
      match Relalg.Table.rows out with
      | [ [| Relalg.Value.Str s |] ] ->
          Alcotest.(check string) "stop detail names the reason" "complete" s
      | _ -> Alcotest.fail "expected exactly one decoded stop row")

let suite =
  [
    Alcotest.test_case "ring wrap-around keeps the newest window" `Quick
      test_wraparound;
    Alcotest.test_case "events round-trip through manifest JSON" `Quick
      test_json_round_trip;
    Alcotest.test_case "order-free projections match seq at 1/2/4 domains"
      `Slow test_order_free_determinism;
    Alcotest.test_case "with_disabled suppresses and restores" `Quick
      test_with_disabled;
    Alcotest.test_case "signal drain handlers armed idempotently" `Quick
      test_signal_arming;
    Alcotest.test_case "sys.events decodes stop rows" `Quick
      test_sys_events_table;
  ]
