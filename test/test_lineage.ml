(* Row-level provenance: the lineage subsystem in lib/relalg and the
   "why" diagnostics built on it.

   The golden test reproduces the paper's Figure 4 narrative end to end:
   on the VC2/VC4 assignment the deadlock explanation must name the wb
   and readex transitions and their virtual channels, with each witness
   traced back to concrete controller rows.  The qcheck properties pin
   the semantic contract of lineage itself: decoding a derived row's
   contributors through the source registry reproduces the row (select),
   or at least covers its cells (project, join). *)

open Relalg

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let assert_contains what ~needle haystack =
  if not (contains ~needle haystack) then
    Alcotest.failf "%s: expected to find %S in:\n%s" what needle haystack

(* indexed [Array.for_all] *)
let for_all_i f a =
  let rec go i = i >= Array.length a || (f i a.(i) && go (i + 1)) in
  go 0

(* ------------------------- lineage basics ----------------------------- *)

let test_tracking_off_is_free () =
  check_bool "tracking off by default" false (Lineage.tracking ());
  let t =
    Table.of_rows ~name:"t"
      (Schema.of_list [ "k"; "x" ])
      [ Row.strings [ "a"; "b" ]; Row.strings [ "c"; "d" ] ]
  in
  let sel = Ops.select (Expr.eq "k" "a") t in
  check_bool "derived table carries no lineage" true (Table.lineage sel = None);
  let j = Ops.equi_join ~on:[ ("k", "k") ] t (Ops.rename [ ("x", "y") ] t) in
  check_bool "join carries no lineage" true (Table.lineage j = None)

let test_with_tracking_restores () =
  check_bool "off before" false (Lineage.tracking ());
  (try
     Lineage.with_tracking (fun () ->
         check_bool "on inside" true (Lineage.tracking ());
         raise Exit)
   with Exit -> ());
  check_bool "off after an exception" false (Lineage.tracking ())

let test_merge_dedups () =
  let a = [| { Lineage.source = 1; row = 0 }; { Lineage.source = 2; row = 3 } |] in
  let b = [| { Lineage.source = 2; row = 3 }; { Lineage.source = 1; row = 7 } |] in
  let m = Lineage.merge a b in
  check_int "set union, duplicates dropped" 3 (Array.length m);
  check_bool "left-to-right order" true
    (m = [| { Lineage.source = 1; row = 0 }; { Lineage.source = 2; row = 3 };
            { Lineage.source = 1; row = 7 } |])

let test_group_count_lineage () =
  Lineage.with_tracking @@ fun () ->
  let t =
    Table.of_rows ~name:"g"
      (Schema.of_list [ "k"; "x" ])
      [
        Row.strings [ "a"; "p" ]; Row.strings [ "a"; "q" ];
        Row.strings [ "b"; "r" ];
      ]
  in
  let groups = Ops.group_count_lineage ~by:[ "k" ] t in
  check_int "two groups" 2 (List.length groups);
  let _, count_a, lin_a =
    List.find (fun (row, _, _) -> row.(0) = Value.Str "a") groups
  in
  check_int "group a has two members" 2 count_a;
  check_int "group a merges both contributors" 2 (Array.length lin_a)

(* ------------------------ solver provenance --------------------------- *)

let test_solver_domain_lineage () =
  Lineage.with_tracking @@ fun () ->
  let spec =
    Solver.make ~name:"toy"
      ~columns:
        [
          { Solver.cname = "a"; role = Solver.Input;
            domain = [ Value.Str "x"; Value.Str "y" ] };
          { Solver.cname = "b"; role = Solver.Output;
            domain = [ Value.Str "u"; Value.Str "v" ] };
        ]
      ~constraints:[]
  in
  let t, _ = Solver.generate spec in
  match Table.lineage t with
  | None -> Alcotest.fail "generated table should carry lineage"
  | Some lin ->
      check_int "one lineage row per table row" (Table.cardinality t)
        (Array.length lin);
      Array.iteri
        (fun i contribs ->
          check_int "one contributor per column" 2 (Array.length contribs);
          Array.iteri
            (fun j (c : Lineage.contrib) ->
              match Lineage.source c.Lineage.source with
              | None -> Alcotest.fail "contributor source not registered"
              | Some s ->
                  check_bool "domain cell reproduces the table cell" true
                    ((s.Lineage.get c.Lineage.row).(0) = (Table.get t i).(j)))
            contribs)
        lin

(* ----------------------- qcheck properties ---------------------------- *)

let value_pool = [ "a"; "b"; "c"; "d" ]

let table_gen ~name ~cols =
  QCheck.Gen.(
    let* n = int_range 1 40 in
    let* rows =
      list_repeat n
        (let* cells =
           flatten_l (List.map (fun _ -> oneofl value_pool) cols)
         in
         return (Row.strings cells))
    in
    return (Table.of_rows ~name (Schema.of_list cols) rows))

let print_table t =
  Printf.sprintf "%s(%d rows)" (Table.name t) (Table.cardinality t)

let decode (c : Lineage.contrib) =
  match Lineage.source c.Lineage.source with
  | None -> Alcotest.failf "unregistered lineage source %d" c.Lineage.source
  | Some s -> s.Lineage.get c.Lineage.row

let cell_mem v row = Array.exists (fun c -> c = v) row

(* σ keeps rows whole: every surviving row has exactly one contributor
   and decoding it through the registry gives back the row itself. *)
let prop_select_lineage =
  QCheck.Test.make ~count:200
    ~name:"select lineage decodes to the identical base row"
    (QCheck.make
       QCheck.Gen.(
         pair (table_gen ~name:"t" ~cols:[ "k"; "x" ]) (oneofl value_pool))
       ~print:(fun (t, v) -> Printf.sprintf "%s, k=%s" (print_table t) v))
    (fun (t, v) ->
      Lineage.with_tracking @@ fun () ->
      let sel = Ops.select (Expr.eq "k" v) t in
      let lin = Option.get (Table.lineage sel) in
      Array.length lin = Table.cardinality sel
      && for_all_i
           (fun i contribs ->
             Array.length contribs = 1
             && decode contribs.(0) = Table.get sel i)
           lin)

(* π drops columns but not rows: each projected cell must occur in the
   (single) contributing base row. *)
let prop_project_lineage =
  QCheck.Test.make ~count:200
    ~name:"project lineage covers every projected cell"
    (QCheck.make
       (table_gen ~name:"t" ~cols:[ "k"; "x"; "y" ])
       ~print:print_table)
    (fun t ->
      Lineage.with_tracking @@ fun () ->
      let p = Table.distinct (Ops.project [ "x"; "k" ] t) in
      let lin = Option.get (Table.lineage p) in
      for_all_i
        (fun i contribs ->
          Array.length contribs >= 1
          && Array.for_all
               (fun cell -> cell_mem cell (decode contribs.(0)))
               (Table.get p i))
        lin)

(* ⋈ merges parents: every cell of a joined row occurs in one of the
   contributing base rows (one from each side). *)
let prop_join_lineage =
  QCheck.Test.make ~count:200
    ~name:"join lineage contributors cover every joined cell"
    (QCheck.make
       QCheck.Gen.(
         pair
           (table_gen ~name:"a" ~cols:[ "k"; "x" ])
           (table_gen ~name:"b" ~cols:[ "k"; "y" ]))
       ~print:(fun (a, b) ->
         Printf.sprintf "%s, %s" (print_table a) (print_table b)))
    (fun (a, b) ->
      Lineage.with_tracking @@ fun () ->
      let j = Ops.equi_join ~on:[ ("k", "k") ] a b in
      let lin = Option.get (Table.lineage j) in
      Array.length lin = Table.cardinality j
      && for_all_i
           (fun i contribs ->
             Array.length contribs = 2
             && Array.for_all
                  (fun cell ->
                    Array.exists (fun c -> cell_mem cell (decode c)) contribs)
                  (Table.get j i))
           lin)

(* -------------------------- why deadlock ------------------------------ *)

(* The paper's Figure 4 story on the VC2/VC4 assignment, loaded through
   the same table round-trip the CSV path uses: the narrative must name
   the writeback (wb -> mwrite) and read-exclusive (readex -> mread)
   transitions and both virtual channels of the surviving cycle. *)
let test_why_deadlock_golden () =
  let v =
    Checker.Vcassign.of_table
      (Checker.Vcassign.to_table Checker.Vcassign.with_vc4)
  in
  let r = Checker.Deadlock.analyze v in
  check_bool "the VC2/VC4 cycle survives" false
    (Checker.Deadlock.is_deadlock_free r);
  let text = Checker.Why.deadlock r in
  assert_contains "cycle channels" ~needle:"VC2 -> VC4 -> VC2" text;
  assert_contains "writeback transition" ~needle:"consuming wb, sends mwrite"
    text;
  assert_contains "read-exclusive transition"
    ~needle:"consuming readex, sends mread" text;
  assert_contains "wb feeds VC4" ~needle:"into VC4" text;
  assert_contains "controller-row witness" ~needle:"D[row " text;
  let dot = Checker.Why.deadlock_dot r in
  assert_contains "dot names the VC4 node" ~needle:"\"VC4\"" dot;
  assert_contains "dot has witness edges" ~needle:"->" dot

let test_why_deadlock_free () =
  let r = Checker.Deadlock.analyze Checker.Vcassign.debugged in
  let text = Checker.Why.deadlock r in
  assert_contains "deadlock-free narrative" ~needle:"Deadlock free" text

(* ------------------------- why invariant ------------------------------ *)

let test_why_invariant_lineage () =
  let db = Protocol.database () in
  (* a deliberately failing "invariant": its query selects real rows, so
     the explanation must decode their lineage back to the D table *)
  let failing =
    {
      Checker.Invariant.id = "test-readex-rows";
      description = "no readex rows (deliberately false)";
      controller = "D";
      check = Checker.Invariant.Sql "SELECT inmsg, dirst FROM D WHERE inmsg = 'readex'";
    }
  in
  let passed, text = Checker.Why.invariant db failing in
  check_bool "deliberately false invariant fails" false passed;
  assert_contains "violation rows shown" ~needle:"VIOLATED" text;
  assert_contains "lineage decoded" ~needle:"derived from" text;
  assert_contains "base table named" ~needle:"D[row " text;
  (* and a real invariant from the suite still holds, with a narrative *)
  match Checker.Invariant.find "d-mesi-pv-one" with
  | None -> Alcotest.fail "d-mesi-pv-one missing from the suite"
  | Some inv ->
      let passed, text = Checker.Why.invariant db inv in
      check_bool "suite invariant holds" true passed;
      assert_contains "holds narrative" ~needle:"HOLDS" text

let suite =
  [
    Alcotest.test_case "tracking off: no lineage, no cost" `Quick
      test_tracking_off_is_free;
    Alcotest.test_case "with_tracking restores on exception" `Quick
      test_with_tracking_restores;
    Alcotest.test_case "merge is an order-preserving set union" `Quick
      test_merge_dedups;
    Alcotest.test_case "group_count_lineage merges group members" `Quick
      test_group_count_lineage;
    Alcotest.test_case "solver rows point at their domain cells" `Quick
      test_solver_domain_lineage;
    QCheck_alcotest.to_alcotest prop_select_lineage;
    QCheck_alcotest.to_alcotest prop_project_lineage;
    QCheck_alcotest.to_alcotest prop_join_lineage;
    Alcotest.test_case "why deadlock reproduces the Figure 4 narrative"
      `Quick test_why_deadlock_golden;
    Alcotest.test_case "why deadlock on the debugged assignment" `Quick
      test_why_deadlock_free;
    Alcotest.test_case "why invariant decodes violation lineage" `Quick
      test_why_invariant_lineage;
  ]
