(* Query plans, the optimizer, CSV interchange, COUNT. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db =
  Database.of_tables
    [
      Table.of_rows ~name:"T"
        (Schema.of_list [ "a"; "b" ])
        (List.map Row.strings
           [ [ "x"; "1" ]; [ "x"; "2" ]; [ "y"; "1" ]; [ "z"; "3" ] ]);
      Table.of_rows ~name:"U"
        (Schema.of_list [ "a"; "b" ])
        (List.map Row.strings [ [ "x"; "1" ]; [ "w"; "9" ] ]);
    ]

let q = Sql_parser.parse_query

(* ------------------------------ plans ------------------------------- *)

let test_translation () =
  match Plan.of_query (q "SELECT DISTINCT a FROM T WHERE b = '1'") with
  | Plan.Distinct (Plan.Project ([ "a" ], Plan.Select (_, Plan.Scan "T"))) -> ()
  | p -> Alcotest.fail ("unexpected plan: " ^ Plan.explain p)

let test_simplify_predicate () =
  let s = Plan.simplify_predicate in
  check "x and true = x" true
    (s Expr.(And (eq "a" "x", True)) = Expr.eq "a" "x");
  check "x or true = true" true (s Expr.(Or (eq "a" "x", True)) = Expr.True);
  check "constant fold eq" true
    (s (Expr.Eq (Expr.s "p", Expr.s "p")) = Expr.True);
  check "constant fold neq" true
    (s (Expr.Neq (Expr.s "p", Expr.s "q")) = Expr.True);
  check "double negation" true
    (s (Expr.Not (Expr.Not (Expr.eq "a" "x"))) = Expr.eq "a" "x");
  check "empty IN is false" true (s (Expr.In (Expr.Col "a", [])) = Expr.False);
  check "singleton IN becomes eq" true
    (s (Expr.isin "a" [ "x" ]) = Expr.eq "a" "x");
  check "constant ternary collapses" true
    (s (Expr.Ternary (Expr.True, Expr.eq "a" "x", Expr.False)) = Expr.eq "a" "x")

let test_optimizer_rules () =
  (* select false collapses branches whose schema is statically known *)
  (match
     Plan.optimize
       (Plan.Select (Expr.False, Plan.Project ([ "a" ], Plan.Scan "T")))
   with
  | Plan.Empty [ "a" ] -> ()
  | p -> Alcotest.fail ("expected empty: " ^ Plan.explain p));
  (* over a bare scan the schema is unknown: the selection stays *)
  (match Plan.optimize (Plan.Select (Expr.False, Plan.Scan "T")) with
  | Plan.Select (Expr.False, Plan.Scan "T") -> ()
  | p -> Alcotest.fail ("expected kept select: " ^ Plan.explain p));
  (* adjacent selects merge *)
  (match
     Plan.optimize
       (Plan.Select (Expr.eq "a" "x", Plan.Select (Expr.eq "b" "1", Plan.Scan "T")))
   with
  | Plan.Select (Expr.And _, Plan.Scan "T") -> ()
  | p -> Alcotest.fail ("expected merged select: " ^ Plan.explain p));
  (* select pushes below project *)
  match
    Plan.optimize
      (Plan.Select (Expr.eq "a" "x", Plan.Project ([ "a" ], Plan.Scan "T")))
  with
  | Plan.Project ([ "a" ], Plan.Select (_, Plan.Scan "T")) -> ()
  | p -> Alcotest.fail ("expected pushed select: " ^ Plan.explain p)

let queries =
  [
    "SELECT a FROM T WHERE b = '1'";
    "SELECT DISTINCT a FROM T";
    "SELECT a, b FROM T WHERE a = 'x' AND b = '2'";
    "SELECT a FROM T WHERE a = 'x' UNION SELECT a FROM U";
    "SELECT a FROM T EXCEPT SELECT a FROM U WHERE b = '9'";
    "SELECT a FROM T WHERE a = 'nosuch' UNION SELECT a FROM U";
    "SELECT a FROM T INTERSECT SELECT a FROM U";
    "SELECT * FROM T WHERE NOT (a = 'x' OR b = '3')";
    "SELECT a FROM T WHERE a IN ('x')";
    "SELECT COUNT(*) FROM T WHERE a = 'x'";
  ]

let test_optimizer_preserves_semantics () =
  List.iter
    (fun src ->
      let direct = Plan.run ~optimize:false db src in
      let optimized = Plan.run ~optimize:true db src in
      check ("same result: " ^ src) true
        (Table.equal_as_sets direct optimized))
    queries

let test_plan_matches_executor () =
  List.iter
    (fun src ->
      check ("plan = executor: " ^ src) true
        (Table.equal_as_sets (Plan.run db src) (Sql_exec.query db src)))
    queries

let test_explain () =
  let s = Plan.explain (Plan.of_query (q "SELECT DISTINCT a FROM T WHERE b = '1'")) in
  check "multi-line tree" true (List.length (String.split_on_char '\n' s) >= 4)

(* random plans: optimize must preserve results *)
let pred_gen =
  QCheck.Gen.(
    let atom =
      oneof
        [
          map2 (fun c v -> Expr.eq c v) (oneofl [ "a"; "b" ]) (oneofl [ "x"; "1"; "q" ]);
          return Expr.True;
          return Expr.False;
        ]
    in
    sized @@ fix (fun self n ->
        if n = 0 then atom
        else
          frequency
            [
              3, atom;
              1, map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2));
              1, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2));
              1, map (fun a -> Expr.Not a) (self (n / 2));
            ]))

let plan_gen =
  QCheck.Gen.(
    let base = oneofl [ Plan.Scan "T"; Plan.Scan "U" ] in
    sized @@ fix (fun self n ->
        if n = 0 then base
        else
          frequency
            [
              2, base;
              2, map2 (fun e p -> Plan.Select (e, p)) pred_gen (self (n / 2));
              1, map (fun p -> Plan.Distinct p) (self (n / 2));
              1, map (fun p -> Plan.Project ([ "a" ], p)) (self (n / 2));
              1, map2 (fun a b -> Plan.Union (a, b)) (self (n / 2)) (self (n / 2));
              1, map2 (fun a b -> Plan.Except (a, b)) (self (n / 2)) (self (n / 2));
            ]))

let prop_optimize_sound =
  QCheck.Test.make ~count:300 ~name:"optimize preserves plan semantics"
    (QCheck.make plan_gen ~print:Plan.explain)
    (fun p ->
      (* random Union/Except operands may have incompatible schemas after
         a Project: treat those as trivially passing *)
      match Plan.execute db p with
      | direct ->
          Table.equal_as_sets direct (Plan.execute db (Plan.optimize p))
      | exception Ops.Incompatible_schemas _ -> true
      | exception Schema.Unknown_column _ -> true)

(* ------------------------------- count ------------------------------ *)

let test_count () =
  let t = Sql_exec.query db "SELECT COUNT(*) FROM T WHERE a = 'x'" in
  check_int "one row" 1 (Table.cardinality t);
  check "count value" true
    (Value.equal (List.hd (Table.rows t)).(0) (Value.Int 2));
  let zero = Sql_exec.query db "SELECT COUNT(*) FROM T WHERE a = 'none'" in
  check "count zero" true
    (Value.equal (List.hd (Table.rows zero)).(0) (Value.Int 0))

let test_group_by () =
  let t = Sql_exec.query db "SELECT a, COUNT(*) FROM T GROUP BY a" in
  check_int "three groups" 3 (Table.cardinality t);
  check_int "three columns?" 2 (Table.arity t);
  let count_of key =
    List.find_map
      (fun row ->
        if Value.equal row.(0) (Value.str key) then
          match row.(1) with Value.Int n -> Some n | _ -> None
        else None)
      (Table.rows t)
  in
  Alcotest.(check (option int)) "x appears twice" (Some 2) (count_of "x");
  Alcotest.(check (option int)) "z appears once" (Some 1) (count_of "z");
  (* with a WHERE clause *)
  let t = Sql_exec.query db "SELECT a, COUNT(*) FROM T WHERE b = '1' GROUP BY a" in
  check_int "filtered groups" 2 (Table.cardinality t);
  (* planner and physical agree *)
  let q = "SELECT a, COUNT(*) FROM T WHERE NOT a = 'z' GROUP BY a" in
  check "plan agrees" true
    (Table.equal_as_sets (Plan.run db q) (Sql_exec.query db q));
  check "mismatched keys rejected" true
    (try
       ignore (Sql_parser.parse_query "SELECT a, COUNT(*) FROM T GROUP BY b");
       false
     with Sql_parser.Parse_error _ -> true)

(* -------------------------------- csv ------------------------------- *)

let test_csv_roundtrip () =
  let t =
    Table.of_rows ~name:"R"
      (Schema.of_list [ "m"; "n"; "note" ])
      [
        [| Value.str "readex"; Value.Int 3; Value.str "plain" |];
        [| Value.Null; Value.Int (-1); Value.str "has,comma" |];
        [| Value.Bool true; Value.Int 0; Value.str "quote\"inside" |];
      ]
  in
  let back = Csv.of_string ~name:"R" (Csv.to_string t) in
  check "roundtrip" true (Table.equal_as_sets t back);
  check "schema preserved" true (Schema.equal (Table.schema t) (Table.schema back))

let test_csv_null_conventions () =
  let t = Csv.of_string ~name:"x" "a,b\nNULL,plain\n,quoted\n" in
  let rows = Table.rows t in
  check "NULL literal" true (Value.is_null (List.hd rows).(0));
  check "empty cell is null" true (Value.is_null (List.nth rows 1).(0))

let test_csv_errors () =
  check "ragged row" true
    (try ignore (Csv.of_string ~name:"x" "a,b\n1\n"); false
     with Csv.Csv_error _ -> true);
  check "unterminated quote" true
    (try ignore (Csv.of_string ~name:"x" "a\n\"oops\n"); false
     with Csv.Csv_error _ -> true)

let test_csv_on_controller_table () =
  let d = Protocol.Dir_controller.table () in
  let back = Csv.of_string ~name:"D" (Csv.to_string d) in
  check "D roundtrips through csv" true (Table.equal_as_sets d back)

(* The CSV renderer walks dictionary codes; make sure derived tables —
   whose shared dictionaries hold more entries than the rows reference —
   render exactly their own rows. *)
let test_csv_roundtrip_derived () =
  let d = Protocol.Dir_controller.table () in
  let sub =
    Ops.project [ "inmsg"; "dirst"; "locmsg" ]
      (Ops.select (Expr.eq "inmsg" "readex") d)
  in
  let back = Csv.of_string ~name:"sub" (Csv.to_string sub) in
  check "derived table roundtrips" true (Table.equal_as_sets sub back);
  check "row order preserved" true
    (List.for_all2 Row.equal (Table.rows sub) (Table.rows back))

let prop_csv_roundtrip =
  QCheck.Test.make ~count:200 ~name:"csv roundtrips arbitrary cell content"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 5)
           (oneofl
              [ "plain"; "with,comma"; "with\"quote"; "multi\nline"; "NULL"; "" ])))
    (fun cells ->
      let t =
        Table.of_rows ~name:"q"
          (Schema.of_list
             (List.mapi (fun i _ -> Printf.sprintf "c%d" i) cells))
          [ Row.strings cells ]
      in
      Table.equal_as_sets t (Csv.of_string ~name:"q" (Csv.to_string t)))

let suite =
  [
    Alcotest.test_case "query translation" `Quick test_translation;
    Alcotest.test_case "predicate simplification" `Quick test_simplify_predicate;
    Alcotest.test_case "optimizer rules" `Quick test_optimizer_rules;
    Alcotest.test_case "optimizer preserves semantics" `Quick test_optimizer_preserves_semantics;
    Alcotest.test_case "plan matches executor" `Quick test_plan_matches_executor;
    Alcotest.test_case "explain output" `Quick test_explain;
    Alcotest.test_case "count(*)" `Quick test_count;
    Alcotest.test_case "group by count" `Quick test_group_by;
    Alcotest.test_case "csv roundtrip" `Quick test_csv_roundtrip;
    Alcotest.test_case "csv null conventions" `Quick test_csv_null_conventions;
    Alcotest.test_case "csv errors" `Quick test_csv_errors;
    Alcotest.test_case "csv on the D table" `Quick test_csv_on_controller_table;
    Alcotest.test_case "csv on a derived table" `Quick test_csv_roundtrip_derived;
    Test_seed.to_alcotest prop_optimize_sound;
    Test_seed.to_alcotest prop_csv_roundtrip;
  ]
