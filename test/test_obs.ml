(* The observability layer: span nesting and ordering, histogram bucket
   math, counter aggregation across registries, and a round trip of the
   Chrome trace-event JSON export through the bundled parser. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_string = Alcotest.(check string)

(* Each test starts from a clean slate and leaves the layer disabled so
   the other suites (which run in the same process) are unaffected. *)
let with_obs f () =
  Obs.Report.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Config.disable ();
      Obs.Report.reset ())
    (fun () -> Obs.Config.with_enabled f)

(* ------------------------------- spans -------------------------------- *)

let spin () =
  (* burn a little real time so span durations are strictly positive *)
  let t0 = Obs.Clock.now_ns () in
  while Int64.sub (Obs.Clock.now_ns ()) t0 < 50_000L do
    ignore (Sys.opaque_identity (ref 0))
  done

let complete_events () =
  List.filter_map
    (function Obs.Trace.Complete _ as e -> Some e | _ -> None)
    (Obs.Trace.events ())

(* (ts_us, dur_us, depth) of the first complete span with this name *)
let find_span name =
  List.find_map
    (function
      | Obs.Trace.Complete { name = n; ts_us; dur_us; depth; _ } when n = name ->
          Some (ts_us, dur_us, depth)
      | _ -> None)
    (Obs.Trace.events ())
  |> Option.get

let test_span_nesting =
  with_obs @@ fun () ->
  let result =
    Obs.Trace.with_span "outer" (fun () ->
        Obs.Trace.with_span "inner" (fun () ->
            spin ();
            41)
        + 1)
  in
  check_int "thunk result flows through" 42 result;
  check_int "two complete events" 2 (List.length (complete_events ()));
  (* children complete first, so "inner" precedes "outer" *)
  (match complete_events () with
  | [ Obs.Trace.Complete { name = first; _ };
      Obs.Trace.Complete { name = second; _ } ] ->
      check_string "child recorded first" "inner" first;
      check_string "parent recorded second" "outer" second
  | _ -> Alcotest.fail "expected exactly two complete events");
  let o_ts, o_dur, o_depth = find_span "outer" in
  let i_ts, i_dur, i_depth = find_span "inner" in
  check_int "outer is a root span" 0 o_depth;
  check_int "inner nests one level down" 1 i_depth;
  check "inner starts within outer" true (i_ts >= o_ts);
  check "inner ends within outer" true (i_ts +. i_dur <= o_ts +. o_dur);
  check "durations are positive" true (i_dur > 0.)

let test_span_exception =
  with_obs @@ fun () ->
  (try
     Obs.Trace.with_span "failing" (fun () -> failwith "boom")
   with Failure _ -> ());
  check_int "span recorded despite the exception" 1
    (List.length (complete_events ()))

let test_disabled_is_noop () =
  Obs.Report.reset ();
  Obs.Config.disable ();
  let r = Obs.Trace.with_span "ignored" (fun () -> 7) in
  Obs.Trace.instant "ignored";
  Obs.Trace.counter "ignored" [ "x", 1. ];
  let c = Obs.Metrics.counter (Obs.Metrics.registry "off") "n" in
  Obs.Metrics.incr c;
  check_int "thunk still runs" 7 r;
  check_int "no events recorded" 0 (List.length (Obs.Trace.events ()));
  check_int "counter not incremented" 0 (Obs.Metrics.count c)

(* ----------------------------- histograms ----------------------------- *)

let test_histogram_buckets =
  with_obs @@ fun () ->
  let reg = Obs.Metrics.registry "test-hist" in
  let h = Obs.Metrics.histogram ~bounds:[| 1.; 2.; 4.; 8. |] reg "h" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 1.; 1.5; 3.; 100. ];
  check_int "observations" 5 (Obs.Metrics.observations h);
  check_float "mean" ((0.5 +. 1. +. 1.5 +. 3. +. 100.) /. 5.)
    (Obs.Metrics.mean h);
  (* 0.5 and 1.0 land in <=1; 1.5 in <=2; 3.0 in <=4; 100 overflows *)
  check_float "median from buckets" 2. (Obs.Metrics.quantile h 0.5);
  check_float "p100 is the observed max" 100. (Obs.Metrics.quantile h 1.0);
  check "rejects non-increasing bounds" true
    (try
       ignore (Obs.Metrics.histogram ~bounds:[| 2.; 1. |] reg "bad");
       false
     with Invalid_argument _ -> true)

let test_exponential_bounds () =
  Alcotest.(check (array (float 1e-9)))
    "powers of two" [| 1.; 2.; 4.; 8. |]
    (Obs.Metrics.exponential_bounds ~start:1. ~factor:2. 4)

(* ------------------------------ counters ------------------------------ *)

let test_counter_aggregation =
  with_obs @@ fun () ->
  let a = Obs.Metrics.registry "agg-a" and b = Obs.Metrics.registry "agg-b" in
  let ca = Obs.Metrics.counter a "rows" and cb = Obs.Metrics.counter b "rows" in
  let other = Obs.Metrics.counter a "other" in
  Obs.Metrics.add ca 3;
  Obs.Metrics.add cb 4;
  Obs.Metrics.incr cb;
  Obs.Metrics.add other 100;
  check_int "per-registry counts" 3 (Obs.Metrics.count ca);
  check_int "aggregate sums across registries" 8 (Obs.Metrics.aggregate "rows");
  check_int "aggregation is by name" 100 (Obs.Metrics.aggregate "other");
  check "summary mentions both registries" true
    (let s = Obs.Metrics.summary () in
     let contains sub =
       let n = String.length s and m = String.length sub in
       let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
       go 0
     in
     contains "[agg-a]" && contains "[agg-b]");
  Obs.Metrics.reset ();
  check_int "reset zeroes handles in place" 0 (Obs.Metrics.count ca)

(* ------------------------- chrome trace export ------------------------ *)

let test_chrome_roundtrip =
  with_obs @@ fun () ->
  Obs.Trace.with_span ~cat:"t" "outer" (fun () ->
      Obs.Trace.with_span ~cat:"t"
        ~args:[ "k", Obs.Json.Str "v\"with\nescapes" ]
        "inner"
        (fun () -> spin ());
      Obs.Trace.counter "occupancy" [ "VC0", 2.; "VC1", 0. ];
      Obs.Trace.instant "marker");
  let json = Obs.Json.parse_exn (Obs.Trace.export ()) in
  let events =
    Option.get (Obs.Json.member "traceEvents" json)
    |> Obs.Json.to_list |> Option.get
  in
  check_int "all four events exported" 4 (List.length events);
  let field ev name = Option.get (Obs.Json.member name ev) in
  let num ev name = Option.get (Obs.Json.to_number (field ev name)) in
  let str ev name = Option.get (Obs.Json.to_str (field ev name)) in
  (* every event: non-negative ts; complete events: non-negative dur *)
  List.iter
    (fun ev ->
      check "ts >= 0" true (num ev "ts" >= 0.);
      if str ev "ph" = "X" then check "dur >= 0" true (num ev "dur" >= 0.))
    events;
  (* ts/dur containment survives the round trip *)
  let by_name n =
    List.find (fun ev -> str ev "name" = n) events
  in
  let outer = by_name "outer" and inner = by_name "inner" in
  check "inner.ts >= outer.ts" true (num inner "ts" >= num outer "ts");
  check "inner ends before outer ends" true
    (num inner "ts" +. num inner "dur"
    <= num outer "ts" +. num outer "dur");
  (* args survive escaping *)
  check_string "escaped arg round trips" "v\"with\nescapes"
    (Option.get
       (Obs.Json.to_str (Option.get (Obs.Json.member "k" (field inner "args")))));
  (* counter payload *)
  let occ = by_name "occupancy" in
  check_string "counter phase" "C" (str occ "ph");
  check_float "counter value" 2.
    (Option.get
       (Obs.Json.to_number (Option.get (Obs.Json.member "VC0" (field occ "args")))))

let test_json_parser () =
  let roundtrip v = Obs.Json.parse_exn (Obs.Json.to_string v) in
  let v =
    Obs.Json.Obj
      [
        "a", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null ];
        "b", Obs.Json.Bool true;
        "c", Obs.Json.Str "tab\there";
      ]
  in
  check "structured round trip" true (roundtrip v = v);
  check "rejects trailing garbage" true
    (match Obs.Json.parse "{} junk" with Error _ -> true | Ok _ -> false);
  check "parses nested containers" true
    (match Obs.Json.parse "[{\"x\": [1, 2]}, -3.5e2]" with
    | Ok _ -> true
    | Error _ -> false)

(* ------------------------------ report ------------------------------- *)

let test_report_render =
  with_obs @@ fun () ->
  Obs.Trace.with_span "stage" (fun () -> spin ());
  Obs.Metrics.add (Obs.Metrics.counter (Obs.Metrics.registry "layer") "n") 5;
  let s = Obs.Report.render () in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "report lists the span" true (contains "stage");
  check "report lists the registry" true (contains "[layer]");
  Obs.Report.reset ();
  check_string "reset empties the report" "" (Obs.Report.render ())

let suite =
  [
    "span nesting and ordering", `Quick, test_span_nesting;
    "span survives exceptions", `Quick, test_span_exception;
    "disabled layer is a no-op", `Quick, test_disabled_is_noop;
    "histogram bucket math", `Quick, test_histogram_buckets;
    "exponential bounds", `Quick, test_exponential_bounds;
    "counter aggregation across registries", `Quick, test_counter_aggregation;
    "chrome trace json round trip", `Quick, test_chrome_roundtrip;
    "json parser", `Quick, test_json_parser;
    "report rendering", `Quick, test_report_render;
  ]
