(* Values, rows and schemas: the storage layer underneath every table. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        return Value.Null;
        map Value.str (oneofl [ "readex"; "wb"; "I"; "SI"; "Busy-read-d"; "" ]);
        map (fun i -> Value.Int i) small_signed_int;
        map (fun b -> Value.Bool b) bool;
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let test_null_equality () =
  check "null = null" true (Value.equal Value.Null Value.Null);
  check "null <> str" false (Value.equal Value.Null (Value.str ""));
  check "is_null" true (Value.is_null Value.Null);
  check "str not null" false (Value.is_null (Value.str "NULL"))

let test_rendering () =
  check_str "null prints as dash" "-" (Value.to_string Value.Null);
  check_str "sql null" "NULL" (Value.to_sql Value.Null);
  check_str "sql string quoted" "'readex'" (Value.to_sql (Value.str "readex"));
  check_str "int" "42" (Value.to_string (Value.Int 42))

let prop_compare_total =
  QCheck.Test.make ~name:"Value.compare is a total order"
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sgn x = compare x 0 in
      (* antisymmetry and transitivity on a sample *)
      sgn (Value.compare a b) = -sgn (Value.compare b a)
      && (not (Value.compare a b <= 0 && Value.compare b c <= 0)
         || Value.compare a c <= 0))

let prop_hash_consistent =
  QCheck.Test.make ~name:"equal values hash equally"
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

let test_row_compare () =
  let r1 = Row.strings [ "a"; "b" ] in
  let r2 = Row.strings [ "a"; "c" ] in
  check "equal rows" true (Row.equal r1 (Row.strings [ "a"; "b" ]));
  check "unequal rows" false (Row.equal r1 r2);
  check "prefix row is smaller" true (Row.compare (Row.strings [ "a" ]) r1 < 0);
  check_int "hash equal" (Row.hash r1) (Row.hash (Row.strings [ "a"; "b" ]))

let test_schema_basics () =
  let s = Schema.of_list [ "inmsg"; "dirst"; "dirpv" ] in
  check_int "arity" 3 (Schema.arity s);
  check_int "index" 1 (Schema.index s "dirst");
  check "mem" true (Schema.mem s "dirpv");
  check "not mem" false (Schema.mem s "bogus");
  Alcotest.check_raises "unknown column" (Schema.Unknown_column "x") (fun () ->
      ignore (Schema.index s "x"))

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate" (Schema.Duplicate_column "a") (fun () ->
      ignore (Schema.of_list [ "a"; "b"; "a" ]))

let test_schema_ops () =
  let s = Schema.of_list [ "a"; "b"; "c" ] in
  check "project reorders"
    true
    (Schema.columns (Schema.project s [ "c"; "a" ]) = [ "c"; "a" ]);
  check "append" true
    (Schema.columns (Schema.append s [ "d" ]) = [ "a"; "b"; "c"; "d" ]);
  check "rename" true
    (Schema.columns (Schema.rename s [ "b", "bb" ]) = [ "a"; "bb"; "c" ]);
  check "union compatible with self" true (Schema.union_compatible s s);
  check "order matters" false
    (Schema.union_compatible s (Schema.of_list [ "b"; "a"; "c" ]))

let suite =
  [
    Alcotest.test_case "null equality" `Quick test_null_equality;
    Alcotest.test_case "rendering" `Quick test_rendering;
    Alcotest.test_case "row compare/hash" `Quick test_row_compare;
    Alcotest.test_case "schema basics" `Quick test_schema_basics;
    Alcotest.test_case "schema duplicates" `Quick test_schema_duplicate;
    Alcotest.test_case "schema ops" `Quick test_schema_ops;
    Test_seed.to_alcotest prop_compare_total;
    Test_seed.to_alcotest prop_hash_consistent;
  ]
