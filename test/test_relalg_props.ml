(* Algebraic laws of the relational engine, checked on random tables:
   the rewrites the optimizer and the access-path selector rely on must
   hold whatever the data — selection distributes over union, the hash
   index is invisible to query results, and equi-joins commute up to
   column order. *)

open Relalg

let value_pool = [ "a"; "b"; "c"; "d" ]

let table_gen ~name ~cols =
  QCheck.Gen.(
    let* n = int_bound 60 in
    let* rows =
      list_repeat n
        (let* cells =
           flatten_l (List.map (fun _ -> oneofl value_pool) cols)
         in
         return (Row.strings cells))
    in
    return (Table.of_rows ~name (Schema.of_list cols) rows))

let pred_gen =
  QCheck.Gen.(
    let* col = oneofl [ "k"; "x" ] in
    let* v = oneofl value_pool in
    let* negate = bool in
    return (if negate then Expr.Not (Expr.eq col v) else Expr.eq col v))

let print_table t =
  Printf.sprintf "%s(%d rows)" (Table.name t) (Table.cardinality t)

(* σ_p (a ∪ b) = σ_p a ∪ σ_p b *)
let prop_select_union =
  QCheck.Test.make ~count:500
    ~name:"selection distributes over union"
    (QCheck.make
       QCheck.Gen.(
         triple
           (table_gen ~name:"a" ~cols:[ "k"; "x" ])
           (table_gen ~name:"b" ~cols:[ "k"; "x" ])
           pred_gen)
       ~print:(fun (a, b, p) ->
         Printf.sprintf "%s, %s, %s" (print_table a) (print_table b)
           (Expr.to_sql p)))
    (fun (a, b, p) ->
      Table.equal_as_sets
        (Ops.select p (Ops.union a b))
        (Ops.union (Ops.select p a) (Ops.select p b)))

(* The hash index is an access path, not a semantics change: the same
   query through the physical planner returns the same rows with and
   without an index on the filtered column. *)
let prop_indexed_scan =
  QCheck.Test.make ~count:500
    ~name:"indexed scan returns the same rows as a sequential scan"
    (QCheck.make
       QCheck.Gen.(pair (table_gen ~name:"t" ~cols:[ "k"; "x" ]) (oneofl value_pool))
       ~print:(fun (t, v) -> Printf.sprintf "%s, k=%s" (print_table t) v))
    (fun (t, v) ->
      let db = Database.add Database.empty t in
      let sql = Printf.sprintf "SELECT * FROM t WHERE k = '%s'" v in
      let seq = Physical.run (Physical.make_store db) sql in
      let indexed =
        Physical.run ~indexes:[ "t", "k" ] (Physical.make_store db) sql
      in
      Table.equal_as_sets seq indexed)

(* a ⋈ b = b ⋈ a on row multisets, modulo column order. *)
let prop_join_commutes =
  QCheck.Test.make ~count:500
    ~name:"equi-join commutes on row multisets"
    (QCheck.make
       QCheck.Gen.(
         pair
           (table_gen ~name:"a" ~cols:[ "k"; "x" ])
           (table_gen ~name:"b" ~cols:[ "k"; "y" ]))
       ~print:(fun (a, b) ->
         Printf.sprintf "%s, %s" (print_table a) (print_table b)))
    (fun (a, b) ->
      let normalize t =
        List.sort Row.compare (Table.rows (Ops.project [ "k"; "x"; "y" ] t))
      in
      normalize (Ops.equi_join ~on:[ "k", "k" ] a b)
      = normalize (Ops.equi_join ~on:[ "k", "k" ] b a))

let suite =
  [
    Test_seed.to_alcotest prop_select_union;
    Test_seed.to_alcotest prop_indexed_scan;
    Test_seed.to_alcotest prop_join_commutes;
  ]
