(* Transition coverage, run manifests, and the report aggregator:
   bitmap record/snapshot semantics, the pinned golden coverage of the
   Figure 4 replay, seq-vs-par bitmap identity, manifest schema edge
   cases, metric-registry hardening, and a Runreport round trip. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Leave both the coverage switch and the bitmaps clean for whichever
   suite runs next; registrations are kept (lazily-cached rulesets in
   sim/mcheck registered their tables once and would otherwise record
   into the void afterwards). *)
let with_coverage f () =
  Obs.Coverage.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Coverage.disable ();
      Obs.Coverage.reset ())
    (fun () -> Obs.Coverage.with_enabled f)

(* Fake table ids well above anything Relalg.Table allocates in this
   process; each test uses its own id so idempotent registration never
   surprises another test. *)
let fake_id = ref 1_000_000
let fresh_id () = incr fake_id; !fake_id

(* ------------------------------ bitmaps ------------------------------- *)

let test_record_snapshot () =
  let id = fresh_id () in
  Obs.Coverage.register ~id ~name:"FAKE-RS" ~rows:10;
  List.iter (fun row -> Obs.Coverage.record ~id ~row) [ 0; 3; 9; 3 ];
  match
    List.find_opt
      (fun (tc : Obs.Coverage.table_coverage) -> tc.name = "FAKE-RS")
      (Obs.Coverage.snapshot ())
  with
  | None -> Alcotest.fail "registered table missing from snapshot"
  | Some tc ->
      check_int "rows" 10 tc.rows;
      check_int "covered (duplicates collapse)" 3 tc.covered;
      check "row 3 covered" true (Obs.Coverage.is_covered tc 3);
      check "row 4 uncovered" false (Obs.Coverage.is_covered tc 4);
      Alcotest.(check (list int))
        "uncovered rows" [ 1; 2; 4; 5; 6; 7; 8 ]
        (Obs.Coverage.uncovered tc)

let test_disabled_is_noop () =
  let id = fresh_id () in
  Obs.Coverage.register ~id ~name:"FAKE-OFF" ~rows:4;
  Obs.Coverage.disable ();
  Obs.Coverage.record ~id ~row:1;
  Obs.Coverage.enable ();
  let tc =
    List.find
      (fun (tc : Obs.Coverage.table_coverage) -> tc.name = "FAKE-OFF")
      (Obs.Coverage.snapshot ())
  in
  check_int "nothing recorded while off" 0 tc.covered

let test_unregistered_dropped () =
  (* recording against an id nobody registered must not raise and must
     not appear in snapshots *)
  Obs.Coverage.record ~id:(fresh_id ()) ~row:0;
  check "snapshot has no anonymous entry" true
    (List.for_all
       (fun (tc : Obs.Coverage.table_coverage) -> tc.name <> "")
       (Obs.Coverage.snapshot ()))

let test_percent_and_hex () =
  Alcotest.(check (float 1e-9)) "zero rows is fully covered" 100.
    (Obs.Coverage.percent ~covered:0 ~rows:0);
  Alcotest.(check (float 1e-9)) "half" 50.
    (Obs.Coverage.percent ~covered:5 ~rows:10);
  let b = Bytes.of_string "\x00\xff\x5a" in
  check "hex round trip" true
    (Bytes.equal b (Obs.Coverage.of_hex (Obs.Coverage.to_hex b)))

(* -------------------------- golden figure 4 --------------------------- *)

(* The Figure 4 replay is fully scripted, and table generation is
   deterministic, so the exact rows it exercises are a stable golden
   value: five directory rows, one memory row, and no I/O traffic at
   all.  A protocol or solver change that shifts these is worth seeing
   in review. *)
let test_figure4_golden () =
  ignore (Sim.Scenario.figure4 Checker.Vcassign.with_vc4);
  let snap = Obs.Coverage.snapshot () in
  (* other suites may have registered seeded spec variants under the
     same controller name with a different row count; match on the live
     protocol table's cardinality to pick the real one *)
  let find name =
    let rows =
      Relalg.Table.cardinality
        (Protocol.Ctrl_spec.table (Option.get (Protocol.find name)).Protocol.spec)
    in
    List.find
      (fun (tc : Obs.Coverage.table_coverage) ->
        tc.name = name && tc.rows = rows)
      snap
  in
  let covered_rows tc =
    List.filter (Obs.Coverage.is_covered tc) (List.init tc.Obs.Coverage.rows Fun.id)
  in
  let d = find "D" in
  Alcotest.(check (list int))
    "D rows fired" [ 203; 391; 407; 1092; 1125 ] (covered_rows d);
  Alcotest.(check (list int)) "M rows fired" [ 2 ] (covered_rows (find "M"));
  check_int "IO never fires" 0 (find "IO").covered;
  (* an uncovered row decodes to a readable transition *)
  match Protocol.find "IO" with
  | None -> Alcotest.fail "IO controller missing"
  | Some c ->
      let desc = Protocol.Ctrl_spec.describe_row c.Protocol.spec 0 in
      check "decoded transition is non-empty" true (String.length desc > 0);
      check "decoded transition has an arrow" true
        (String.length desc > 4
        && Option.is_some (String.index_opt desc '>'))

(* ------------------------ seq-vs-par identity ------------------------- *)

(* The qcheck property behind the parallel-coverage claim: for random
   small workloads, the ORed worker shards at 4 domains equal the
   single-domain bitmap byte for byte. *)
let mcheck_tables = lazy (Mcheck.Semantics.load_tables ())

let coverage_of ~domains cfg =
  Obs.Coverage.reset ();
  Par.Pool.with_domains domains (fun () ->
      ignore
        (Mcheck.Explore.run ~max_states:2_000
           ~tables:(Lazy.force mcheck_tables) cfg));
  List.map
    (fun (tc : Obs.Coverage.table_coverage) ->
      (tc.name, Bytes.to_string tc.bitmap))
    (Obs.Coverage.snapshot ())

let prop_par_bitmaps_equal_seq =
  QCheck2.Test.make ~count:4
    ~name:"parallel coverage bitmaps merge to the sequential bitmap"
    QCheck2.Gen.(
      pair (int_range 1 2)
        (oneofl [ [ "load" ]; [ "load"; "store" ]; [ "store" ] ]))
    (fun (nodes, ops) ->
      let cfg =
        {
          Mcheck.Semantics.nodes; addrs = 1; ops; capacity = 3;
          io_addrs = []; lossy = false;
        }
      in
      Obs.Coverage.with_enabled (fun () ->
          let seq = coverage_of ~domains:1 cfg in
          let par = coverage_of ~domains:4 cfg in
          Obs.Coverage.reset ();
          seq = par))

(* ------------------------- walkthrough credit ------------------------- *)

let test_walkthrough_rows_exercised () =
  let ws = Sim.Walkthrough.all () in
  check "first walkthrough exercises rows" true
    (match (List.hd ws).Sim.Walkthrough.rows_exercised with
    | Some n -> n > 0
    | None -> false);
  check "every walkthrough attributed" true
    (List.for_all
       (fun w -> Option.is_some w.Sim.Walkthrough.rows_exercised)
       ws)

let test_walkthrough_off_is_none () =
  Obs.Coverage.disable ();
  let w = List.hd (Sim.Walkthrough.all ()) in
  Obs.Coverage.enable ();
  check "no attribution with coverage off" true
    (w.Sim.Walkthrough.rows_exercised = None)

(* ------------------------------ manifests ----------------------------- *)

let member_exn name j =
  match Obs.Json.member name j with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "manifest field %s missing" name)

let test_empty_manifest () =
  (* the zero-state edge case: a manifest taken before any command ran,
     with nothing configured, still carries the schema and an empty but
     well-formed coverage summary *)
  Obs.Runlog.reset ();
  Obs.Coverage.reset ();
  let j = Obs.Runlog.manifest () in
  check_string "schema" "asura-run/1"
    (Option.get (Obs.Json.to_str (member_exn "schema" j)));
  let cov = member_exn "coverage" j in
  (match Obs.Json.to_number (member_exn "rows" cov) with
  | Some _ -> ()
  | None -> Alcotest.fail "coverage.rows not a number");
  (* round trip through the printer/parser *)
  match Obs.Json.parse (Obs.Json.to_string j) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("manifest does not re-parse: " ^ msg)

let test_manifest_write_round_trip () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "asura-test-runs-%d" (Unix.getpid ()))
  in
  Obs.Runlog.configure ~dir ~cmd:"testcmd" ~argv:[| "asura"; "testcmd" |];
  Obs.Runlog.note "answer" (Obs.Json.Int 42);
  Obs.Runlog.note "answer" (Obs.Json.Int 43);
  (match Obs.Runlog.write () with
  | None -> Alcotest.fail "configured runlog refused to write"
  | Some path ->
      let ic = open_in_bin path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Sys.remove path;
      (try Unix.rmdir dir with Unix.Unix_error _ -> ());
      let j = Obs.Json.parse_exn contents in
      check_string "cmd" "testcmd"
        (Option.get (Obs.Json.to_str (member_exn "cmd" j)));
      check "note replaced, not duplicated" true
        (Obs.Json.to_number (member_exn "answer" j) = Some 43.));
  Obs.Runlog.reset ()

let test_heartbeat_tick () =
  let path = Filename.temp_file "asura-beat" ".log" in
  let oc = open_out path in
  Obs.Runlog.set_sink oc;
  Obs.Runlog.enable_progress ~interval_s:0. ();
  Obs.Runlog.tick (fun () -> "beat one");
  Obs.Runlog.tick (fun () -> "beat two");
  Obs.Runlog.disable_progress ();
  Obs.Runlog.tick (fun () -> "beat three (disarmed)");
  Obs.Runlog.set_sink stderr;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string))
    "ticks while armed, silence after" [ "beat one"; "beat two" ]
    (List.rev !lines)

(* ------------------------- evaluation counters ------------------------ *)

let counters_of registry j =
  match Obs.Json.member registry j with
  | Some reg -> (
      match Obs.Json.member "counters" reg with
      | Some (Obs.Json.Obj kvs) -> kvs
      | _ -> [])
  | None -> []

let test_invariant_counters () =
  Obs.Metrics.reset ();
  Obs.Config.with_enabled (fun () ->
      ignore (Checker.Invariant.run_all (Protocol.database ())));
  let counters = counters_of "checker" (Obs.Metrics.to_json ()) in
  let get name = List.assoc_opt name counters in
  (match get "invariants_checked" with
  | Some (Obs.Json.Int n) -> check "aggregate checked count" true (n > 10)
  | _ -> Alcotest.fail "invariants_checked counter missing");
  check "per-invariant checked counters exist" true
    (List.exists
       (fun (k, _) ->
         String.length k > 4
         && String.sub k 0 4 = "inv."
         && Filename.check_suffix k ".checked")
       counters);
  Obs.Metrics.reset ()

let test_solver_pruning_counters () =
  Obs.Metrics.reset ();
  Obs.Config.with_enabled (fun () ->
      ignore
        (Relalg.Solver.generate
           (Protocol.Ctrl_spec.to_solver_spec Protocol.Dir_controller.spec)));
  let counters = counters_of "solver" (Obs.Metrics.to_json ()) in
  check "per-constraint pruning counters exist" true
    (List.exists
       (fun (k, _) ->
         String.length k > 7 && String.sub k 0 7 = "pruned.")
       counters);
  Obs.Metrics.reset ()

let test_metrics_duplicate_registration () =
  Obs.Metrics.reset ();
  let reg = Obs.Metrics.registry "dup-test" in
  let bounds_a = Obs.Metrics.exponential_bounds ~start:0.01 ~factor:4. 8 in
  let bounds_b = Obs.Metrics.exponential_bounds ~start:1.0 ~factor:2. 4 in
  let h1 = Obs.Metrics.histogram ~bounds:bounds_a reg "h" in
  (* re-registration with different bounds must return the existing
     handle instead of raising *)
  let h2 = Obs.Metrics.histogram ~bounds:bounds_b reg "h" in
  Obs.Config.with_enabled (fun () ->
      Obs.Metrics.observe h1 1.0;
      Obs.Metrics.observe h2 2.0);
  (match Obs.Json.member "dup-test" (Obs.Metrics.to_json ()) with
  | Some reg_json -> (
      match
        Option.bind (Obs.Json.member "histograms" reg_json)
          (Obs.Json.member "h")
      with
      | Some h -> (
          match Obs.Json.to_number (Option.get (Obs.Json.member "n" h)) with
          | Some n -> Alcotest.(check (float 1e-9)) "both observed" 2. n
          | None -> Alcotest.fail "histogram sample count missing")
      | None -> Alcotest.fail "histogram missing from metrics JSON")
  | None -> Alcotest.fail "registry missing from metrics JSON");
  Obs.Metrics.reset ()

(* --------------------------- schema stamps ---------------------------- *)

let schema_of j = Option.bind (Obs.Json.member "schema" j) Obs.Json.to_str

let test_stats_and_explain_schemas () =
  let d =
    Protocol.Ctrl_spec.table
      (Option.get (Protocol.find "D")).Protocol.spec
  in
  check "stats schema" true
    (schema_of (Relalg.Profile.to_json (Relalg.Profile.profile d))
    = Some "asura-stats/1");
  let store = Relalg.Physical.make_store (Protocol.database ()) in
  let r = Relalg.Analyze.run ~indexes:[] store "SELECT inmsg FROM M" in
  check "explain schema" true
    (schema_of (Relalg.Analyze.to_json r) = Some "asura-explain/1")

(* ----------------------------- runreport ------------------------------ *)

let synthetic_manifest () =
  (* two tables, one fully covered, one half covered *)
  Obs.Json.Obj
    [
      "schema", Obs.Json.Str "asura-run/1";
      "cmd", Obs.Json.Str "mcheck";
      "date", Obs.Json.Str "2026-08-06T00:00:00Z";
      "elapsed_s", Obs.Json.Float 1.0;
      ( "metrics",
        Obs.Json.Obj
          [
            ( "checker",
              Obs.Json.Obj
                [
                  ( "counters",
                    Obs.Json.Obj
                      [
                        "inv.d-owner.checked", Obs.Json.Int 3;
                        "inv.d-owner.violated", Obs.Json.Int 1;
                      ] );
                ] );
          ] );
      ( "coverage",
        Obs.Json.Obj
          [
            "covered", Obs.Json.Int 10;
            "rows", Obs.Json.Int 12;
            "percent", Obs.Json.Float (100. *. 10. /. 12.);
            ( "tables",
              Obs.Json.List
                [
                  Obs.Json.Obj
                    [
                      "table", Obs.Json.Str "A";
                      "rows", Obs.Json.Int 8;
                      "covered", Obs.Json.Int 8;
                      "percent", Obs.Json.Float 100.;
                      "bitmap", Obs.Json.Str "ff";
                    ];
                  Obs.Json.Obj
                    [
                      "table", Obs.Json.Str "B";
                      "rows", Obs.Json.Int 4;
                      "covered", Obs.Json.Int 2;
                      "percent", Obs.Json.Float 50.;
                      "bitmap", Obs.Json.Str "05";
                    ];
                ] );
          ] );
    ]

let test_runreport_round_trip () =
  match Obs.Runreport.collect [ "run-a.json", synthetic_manifest () ] with
  | _, (label, reason) :: _ ->
      Alcotest.fail (Printf.sprintf "%s skipped: %s" label reason)
  | agg, [] ->
      let cov = Obs.Runreport.coverage agg in
      check_int "two tables" 2 (List.length cov);
      let b =
        List.find (fun (tc : Obs.Coverage.table_coverage) -> tc.name = "B") cov
      in
      check_int "B covered" 2 b.covered;
      Alcotest.(check (float 1e-9))
        "overall percent" (100. *. 10. /. 12.)
        (Obs.Runreport.overall_percent agg);
      let md =
        Obs.Runreport.render_markdown
          ~decode:(fun ~table ~rows:_ ~row ->
            if table = "B" then Some (Printf.sprintf "decoded-%d" row) else None)
          agg
      in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      check "coverage table rendered" true (contains md "## Transition coverage");
      check "uncovered row decoded" true (contains md "decoded-1");
      check "invariant matrix rendered" true (contains md "d-owner");
      let j = Obs.Runreport.to_json agg in
      check "report schema" true (schema_of j = Some "asura-report/1");
      (match Obs.Json.parse (Obs.Json.to_string j) with
      | Ok _ -> ()
      | Error msg -> Alcotest.fail ("report JSON does not re-parse: " ^ msg));
      let html = Obs.Runreport.render_html agg in
      check "html has a table" true (contains html "<table>")

let test_runreport_rejects_unknown_schema () =
  (* A malformed document is skipped with a warning, not classified and
     not fatal: healthy documents in the same batch still aggregate. *)
  let agg, skipped =
    Obs.Runreport.collect
      [
        "bad.json", Obs.Json.Obj [ "schema", Obs.Json.Str "nonsense/9" ];
        "run-a.json", synthetic_manifest ();
      ]
  in
  check_int "one document skipped" 1 (List.length skipped);
  (match skipped with
  | [ (label, reason) ] ->
      check "warning names the file" true (label = "bad.json");
      check "warning has a reason" true (String.length reason > 0)
  | _ -> Alcotest.fail "expected exactly one skip warning");
  check "healthy manifest survives" false (Obs.Runreport.is_empty agg);
  check_int "healthy run collected" 1 (List.length agg.Obs.Runreport.runs);
  let all_bad, skipped2 =
    Obs.Runreport.collect [ "only-bad.json", Obs.Json.Obj [] ]
  in
  check "all-bad aggregate is empty" true (Obs.Runreport.is_empty all_bad);
  check_int "all-bad everything skipped" 1 (List.length skipped2)

let suite =
  [
    Alcotest.test_case "record and snapshot" `Quick (with_coverage test_record_snapshot);
    Alcotest.test_case "disabled recording is a no-op" `Quick
      (with_coverage test_disabled_is_noop);
    Alcotest.test_case "unregistered ids are dropped" `Quick
      (with_coverage test_unregistered_dropped);
    Alcotest.test_case "percent edge cases and hex codec" `Quick
      (with_coverage test_percent_and_hex);
    Alcotest.test_case "figure 4 golden coverage" `Quick
      (with_coverage test_figure4_golden);
    Test_seed.to_alcotest prop_par_bitmaps_equal_seq;
    Alcotest.test_case "walkthroughs credited with first-exercised rows" `Quick
      (with_coverage test_walkthrough_rows_exercised);
    Alcotest.test_case "walkthrough attribution off by default" `Quick
      (with_coverage test_walkthrough_off_is_none);
    Alcotest.test_case "empty-run manifest is well-formed" `Quick test_empty_manifest;
    Alcotest.test_case "manifest write round trip" `Quick
      test_manifest_write_round_trip;
    Alcotest.test_case "heartbeat respects arming and sink" `Quick
      test_heartbeat_tick;
    Alcotest.test_case "invariant evaluation counters" `Quick
      test_invariant_counters;
    Alcotest.test_case "solver pruning attribution" `Quick
      test_solver_pruning_counters;
    Alcotest.test_case "duplicate metric registration is safe" `Quick
      test_metrics_duplicate_registration;
    Alcotest.test_case "stats and explain schema stamps" `Quick
      test_stats_and_explain_schemas;
    Alcotest.test_case "runreport aggregation round trip" `Quick
      test_runreport_round_trip;
    Alcotest.test_case "runreport rejects unknown schemas" `Quick
      test_runreport_rejects_unknown_schema;
  ]
