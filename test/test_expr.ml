(* The column-constraint language: evaluation, compilation, rendering. *)

open Relalg

let schema = Schema.of_list [ "inmsg"; "dirst"; "dirpv" ]
let row inmsg dirst dirpv = Row.of_list [ inmsg; dirst; dirpv ]
let srow a b c = row (Value.str a) (Value.str b) (Value.str c)
let check = Alcotest.(check bool)

(* The paper's example constraint for the dirpv column:
   inmsg = "data" and dirst = "Busy-d" ? dirpv = zero : dirpv = one *)
let paper_constraint =
  Expr.(
    ternary
      (eq "inmsg" "data" &&& eq "dirst" "Busy-d")
      (eq "dirpv" "zero") (eq "dirpv" "one"))

let test_paper_ternary () =
  let holds r = Expr.eval schema r paper_constraint in
  check "busy-d data needs zero" true (holds (srow "data" "Busy-d" "zero"));
  check "busy-d data rejects one" false (holds (srow "data" "Busy-d" "one"));
  check "otherwise needs one" true (holds (srow "readex" "SI" "one"));
  check "otherwise rejects zero" false (holds (srow "readex" "SI" "zero"))

let test_atoms () =
  let r = srow "readex" "SI" "gone" in
  check "eq" true (Expr.eval schema r (Expr.eq "inmsg" "readex"));
  check "neq" true (Expr.eval schema r (Expr.neq "dirst" "I"));
  check "in" true (Expr.eval schema r (Expr.isin "dirpv" [ "one"; "gone" ]));
  check "not in" false (Expr.eval schema r (Expr.isin "dirpv" [ "one" ]));
  check "null literal" true
    (Expr.eval schema
       (row Value.Null (Value.str "SI") (Value.str "one"))
       (Expr.eq_null "inmsg"))

let test_connectives () =
  let r = srow "wb" "MESI" "one" in
  let t = Expr.eq "inmsg" "wb" and f = Expr.eq "inmsg" "read" in
  check "and" true (Expr.eval schema r Expr.(t &&& t));
  check "and short" false (Expr.eval schema r Expr.(t &&& f));
  check "or" true (Expr.eval schema r Expr.(f ||| t));
  check "not" true (Expr.eval schema r (Expr.Not f));
  check "conj []" true (Expr.eval schema r (Expr.conj []));
  check "disj []" false (Expr.eval schema r (Expr.disj []))

let test_functions () =
  let funcs name =
    if name = "isrequest" then
      Some (fun v -> Value.equal v (Value.str "readex"))
    else None
  in
  let e = Expr.Fn ("isrequest", Expr.Col "inmsg") in
  check "registered fn" true
    (Expr.eval ~funcs schema (srow "readex" "I" "zero") e);
  check "fn false" false (Expr.eval ~funcs schema (srow "data" "I" "zero") e);
  Alcotest.check_raises "unknown fn" (Expr.Unknown_function "isrequest")
    (fun () -> ignore (Expr.eval schema (srow "a" "b" "c") e))

let test_free_columns () =
  Alcotest.(check (list string))
    "free columns in order" [ "inmsg"; "dirst"; "dirpv" ]
    (Expr.free_columns paper_constraint);
  Alcotest.(check (list string)) "no duplicates" [ "inmsg" ]
    (Expr.free_columns Expr.(eq "inmsg" "a" ||| eq "inmsg" "b"))

(* random expressions over the schema *)
let expr_gen =
  let open QCheck.Gen in
  let atom =
    oneof
      [
        return Expr.True;
        return Expr.False;
        map2
          (fun c v -> Expr.eq c v)
          (oneofl [ "inmsg"; "dirst"; "dirpv" ])
          (oneofl [ "readex"; "data"; "SI"; "I"; "one"; "zero" ]);
        map2
          (fun c v -> Expr.neq c v)
          (oneofl [ "inmsg"; "dirst"; "dirpv" ])
          (oneofl [ "readex"; "SI"; "one" ]);
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then atom
         else
           frequency
             [
               3, atom;
               2, map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2));
               2, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2));
               1, map (fun a -> Expr.Not a) (self (n / 2));
               1,
                 map3
                   (fun a b c -> Expr.Ternary (a, b, c))
                   (self (n / 3)) (self (n / 3)) (self (n / 3));
             ])

let row_gen =
  QCheck.Gen.(
    map3
      (fun a b c -> srow a b c)
      (oneofl [ "readex"; "data"; "wb" ])
      (oneofl [ "SI"; "I"; "MESI" ])
      (oneofl [ "one"; "zero"; "gone" ]))

let prop_compile_agrees =
  QCheck.Test.make ~count:500
    ~name:"Expr.compile agrees with Expr.eval"
    (QCheck.make
       QCheck.Gen.(pair expr_gen row_gen)
       ~print:(fun (e, _) -> Format.asprintf "%a" Expr.pp e))
    (fun (e, r) -> Expr.compile schema e r = Expr.eval schema r e)

(* --- compile_columns: the dictionary-compiled evaluator ------------- *)

(* Random tables with NULL cells, and expressions that exercise every
   compiled atom: constants absent from the dictionaries ("zz"), NULL
   literals, IN masks, function memo tables, and column-column equality
   (which crosses two dictionaries). *)
let cell_gen =
  QCheck.Gen.(
    frequency
      [
        1, return Value.Null;
        4, map Value.str (oneofl [ "readex"; "data"; "SI"; "I"; "one"; "zero" ]);
      ])

let table_rows_gen =
  QCheck.Gen.(
    list_size (int_range 0 30)
      (map3 (fun a b c -> [| a; b; c |]) cell_gen cell_gen cell_gen))

let columns_funcs name =
  if name = "shortname" then
    Some
      (fun v ->
        (not (Value.equal v Value.Null))
        && String.length (Value.to_string v) <= 2)
  else None

let columns_expr_gen =
  let open QCheck.Gen in
  let cols = oneofl [ "inmsg"; "dirst"; "dirpv" ] in
  let vals =
    oneofl [ "readex"; "data"; "SI"; "I"; "one"; "zero"; "zz" ]
    (* "zz" never occurs in a table: the constant-false compile path *)
  in
  let atom =
    oneof
      [
        return Expr.True;
        return Expr.False;
        map2 Expr.eq cols vals;
        map2 Expr.neq cols vals;
        map Expr.eq_null cols;
        map2 (fun c vs -> Expr.isin c vs) cols (list_size (int_bound 3) vals);
        map (fun c -> Expr.Fn ("shortname", Expr.Col c)) cols;
        map2 (fun a b -> Expr.Eq (Expr.Col a, Expr.Col b)) cols cols;
        map2 (fun a b -> Expr.Neq (Expr.Col a, Expr.Col b)) cols cols;
      ]
  in
  sized
  @@ fix (fun self n ->
         if n = 0 then atom
         else
           frequency
             [
               3, atom;
               2, map2 (fun a b -> Expr.And (a, b)) (self (n / 2)) (self (n / 2));
               2, map2 (fun a b -> Expr.Or (a, b)) (self (n / 2)) (self (n / 2));
               1, map (fun a -> Expr.Not a) (self (n / 2));
               1,
                 map3
                   (fun a b c -> Expr.Ternary (a, b, c))
                   (self (n / 3)) (self (n / 3)) (self (n / 3));
             ])

let prop_compile_columns_agrees =
  QCheck.Test.make ~count:500
    ~name:"Expr.compile_columns agrees with Expr.eval (incl. NULLs)"
    (QCheck.make
       QCheck.Gen.(pair columns_expr_gen table_rows_gen)
       ~print:(fun (e, rows) ->
         Format.asprintf "%a on %d rows" Expr.pp e (List.length rows)))
    (fun (e, rows) ->
      let t = Table.of_rows ~name:"t" schema rows in
      let compiled =
        Expr.compile_columns ~funcs:columns_funcs schema ~dict:(Table.dict t)
          ~codes:(Table.codes t) e
      in
      let ok = ref true in
      List.iteri
        (fun i row ->
          if compiled i <> Expr.eval ~funcs:columns_funcs schema row e then
            ok := false)
        rows;
      !ok)

(* The compiled predicate must also agree on derived tables, whose
   dictionaries are shared with (and can be larger than) the column's
   own value set. *)
let prop_compile_columns_on_derived =
  QCheck.Test.make ~count:200
    ~name:"Expr.compile_columns agrees on selection-derived tables"
    (QCheck.make
       QCheck.Gen.(pair columns_expr_gen table_rows_gen)
       ~print:(fun (e, rows) ->
         Format.asprintf "%a on %d rows" Expr.pp e (List.length rows)))
    (fun (e, rows) ->
      let t = Table.of_rows ~name:"t" schema rows in
      let sub = Ops.select (Expr.Not (Expr.eq_null "inmsg")) t in
      let compiled =
        Expr.compile_columns ~funcs:columns_funcs schema
          ~dict:(Table.dict sub) ~codes:(Table.codes sub) e
      in
      let ok = ref true in
      List.iteri
        (fun i row ->
          if compiled i <> Expr.eval ~funcs:columns_funcs schema row e then
            ok := false)
        (Table.rows sub);
      !ok)

let prop_ternary_expansion =
  QCheck.Test.make ~count:500
    ~name:"cond ? a : b  ==  (cond and a) or (not cond and b)"
    (QCheck.make QCheck.Gen.(pair (triple expr_gen expr_gen expr_gen) row_gen))
    (fun ((c, a, b), r) ->
      Expr.eval schema r (Expr.Ternary (c, a, b))
      = Expr.eval schema r Expr.(Or (And (c, a), And (Not c, b))))

let suite =
  [
    Alcotest.test_case "paper ternary constraint" `Quick test_paper_ternary;
    Alcotest.test_case "atoms" `Quick test_atoms;
    Alcotest.test_case "connectives" `Quick test_connectives;
    Alcotest.test_case "registered functions" `Quick test_functions;
    Alcotest.test_case "free columns" `Quick test_free_columns;
    Test_seed.to_alcotest prop_compile_agrees;
    Test_seed.to_alcotest prop_compile_columns_agrees;
    Test_seed.to_alcotest prop_compile_columns_on_derived;
    Test_seed.to_alcotest prop_ternary_expansion;
  ]
