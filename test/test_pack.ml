(* Property battery for the bit-packed state representation (Mcheck.Pack).

   The packed visited set stands in for structural state equality in the
   exploration core, so the properties here are exactly the soundness
   obligations of that substitution: pack/unpack is an exact inverse
   over arbitrary (not just reachable) states, pack-equality coincides
   with structural equality in both directions, hashes are stable across
   domains, the permutation-during-encoding path agrees with
   Mstate.permute, and a dictionary growing past its field width fails
   loudly (Overflow) and recovers by layout refresh without invalidating
   vectors packed earlier. *)

open Mcheck

(* ------------------------- state generation -------------------------- *)

let dirst_pool = [ "I"; "SI"; "MESI" ]
let bst_pool = [ "I"; "Busy-read-sd"; "Busy-readex-sd"; "Busy-wb" ]
let cache_pool = [ "I"; "S"; "E"; "M" ]
let pend_pool = [ "read"; "write"; "wback"; "backoff:read"; "backoff:write" ]

let msg_pool =
  [ "read"; "readex"; "wb"; "data"; "sdata"; "idone"; "mread"; "mdata" ]

let cls_pool = [ "reqq"; "respq"; "snp"; "resp"; "ackq"; "memq" ]

let layout_for ~nodes ~addrs ~capacity =
  Pack.layout ~nodes ~addrs ~capacity ~dirst:dirst_pool ~bst:bst_pool
    ~cache:cache_pool ~pend:pend_pool ~msg:msg_pool ()

(* Arbitrary well-formed states for a (nodes, addrs) shape: any field
   combination the Mstate type allows, with queues respecting the
   sorted-by-key / no-empty-FIFO invariant. *)
let state_gen ~nodes ~addrs ~capacity =
  QCheck.Gen.(
    let endpoint = map (fun e -> e - 2) (int_bound (nodes + 1)) in
    let mask = int_bound ((1 lsl nodes) - 1) in
    let busy_gen =
      let* bst = oneofl (List.filter (( <> ) "I") bst_pool) in
      let* requester = endpoint in
      let* acks = mask in
      let* snapshot = mask in
      let* data_fresh = bool in
      return { Mstate.bst; requester; acks; snapshot; data_fresh }
    in
    let addr_gen =
      let* dirst = oneofl dirst_pool in
      let* sharers = mask in
      let* busy = opt busy_gen in
      let* mem_fresh = bool in
      return { Mstate.dirst; sharers; busy; mem_fresh }
    in
    let msg_gen =
      let* m = oneofl msg_pool in
      let* src = endpoint in
      let* dst = endpoint in
      let* addr = int_bound (addrs - 1) in
      let* fresh = bool in
      return { Mstate.m; src; dst; addr; fresh }
    in
    let channel_gen =
      let* src = endpoint in
      let* dst = endpoint in
      let* cls = oneofl cls_pool in
      let* len = int_range 1 capacity in
      let* q = list_repeat len msg_gen in
      return ((src, dst, cls), q)
    in
    let* addrs_l = list_repeat addrs addr_gen in
    let* caches = list_repeat nodes (list_repeat addrs (oneofl cache_pool)) in
    let* pend = list_repeat nodes (list_repeat addrs (opt (oneofl pend_pool))) in
    let* nchans = int_bound 4 in
    let* chans = list_repeat nchans channel_gen in
    (* dedup channel keys and restore the sorted-assoc invariant *)
    let chans =
      List.sort_uniq (fun (k, _) (k', _) -> compare k k') chans
    in
    return { Mstate.addrs = addrs_l; caches; pend; queues = chans })

let shape_gen =
  QCheck.Gen.(
    let* nodes = int_range 1 3 in
    let* addrs = int_range 1 2 in
    return (nodes, addrs))

let case_gen =
  QCheck.Gen.(
    let* nodes, addrs = shape_gen in
    let* st = state_gen ~nodes ~addrs ~capacity:3 in
    return (nodes, addrs, st))

let print_case (nodes, addrs, st) =
  Format.asprintf "nodes=%d addrs=%d@.%a" nodes addrs Mstate.pp st

let case_arb = QCheck.make case_gen ~print:print_case

(* ----------------------------- properties ----------------------------- *)

let prop_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"pack/unpack round-trip is exact"
    case_arb (fun (nodes, addrs, st) ->
      let l = layout_for ~nodes ~addrs ~capacity:3 in
      Pack.unpack l (Pack.pack l st) = st)

let pair_gen =
  QCheck.Gen.(
    let* nodes, addrs = shape_gen in
    let* a = state_gen ~nodes ~addrs ~capacity:3 in
    let* dup = bool in
    let* b = if dup then return a else state_gen ~nodes ~addrs ~capacity:3 in
    return (nodes, addrs, a, b))

let prop_equality =
  QCheck.Test.make ~count:1000
    ~name:"pack-equality coincides with structural equality"
    (QCheck.make pair_gen ~print:(fun (n, a, s1, s2) ->
         print_case (n, a, s1) ^ "----\n" ^ print_case (n, a, s2)))
    (fun (nodes, addrs, a, b) ->
      let l = layout_for ~nodes ~addrs ~capacity:3 in
      let pa = Pack.pack l a and pb = Pack.pack l b in
      Pack.equal pa pb = (a = b)
      && (Pack.equal pa pb = (Pack.compare_packed pa pb = 0))
      && ((not (Pack.equal pa pb)) || Pack.hash pa = Pack.hash pb))

let prop_hash_stable_across_domains =
  QCheck.Test.make ~count:100
    ~name:"packed hashes identical from pool workers at 1/2/4 domains"
    (QCheck.make
       QCheck.Gen.(
         let* nodes, addrs = shape_gen in
         let* sts = list_repeat 8 (state_gen ~nodes ~addrs ~capacity:3) in
         return (nodes, addrs, sts))
       ~print:(fun (n, a, sts) ->
         Printf.sprintf "nodes=%d addrs=%d, %d states" n a (List.length sts)))
    (fun (nodes, addrs, sts) ->
      let l = layout_for ~nodes ~addrs ~capacity:3 in
      let packed = List.map (Pack.pack l) sts in
      let reference = List.map Pack.hash packed in
      List.for_all
        (fun d ->
          Par.Pool.with_domains d (fun () ->
              Par.Pool.map_list ~min_chunk:1 Pack.hash packed = reference))
        [ 1; 2; 4 ])

let perm_gen nodes =
  QCheck.Gen.(
    let* shuffled = shuffle_l (List.init nodes Fun.id) in
    let m = Array.of_list shuffled in
    let inv = Array.make nodes 0 in
    Array.iteri (fun j mj -> inv.(mj) <- j) m;
    return (m, inv))

let prop_pack_perm =
  QCheck.Test.make ~count:500
    ~name:"pack ~perm equals pack of the permuted state"
    (QCheck.make
       QCheck.Gen.(
         let* nodes, addrs, st = case_gen in
         let* perm = perm_gen nodes in
         return (nodes, addrs, st, perm))
       ~print:(fun (n, a, st, (m, _)) ->
         Printf.sprintf "perm=[%s] %s"
           (String.concat ";" (Array.to_list (Array.map string_of_int m)))
           (print_case (n, a, st))))
    (fun (nodes, addrs, st, (m, inv)) ->
      let l = layout_for ~nodes ~addrs ~capacity:3 in
      Pack.equal
        (Pack.pack ~perm:(m, inv) l st)
        (Pack.pack l (Mstate.permute (fun j -> m.(j)) ~nodes st)))

let prop_canonical_orbit =
  QCheck.Test.make ~count:300
    ~name:"canonical packed vector constant on a permutation orbit"
    (QCheck.make
       QCheck.Gen.(
         let* nodes, addrs, st = case_gen in
         let* m, _ = perm_gen nodes in
         return (nodes, addrs, st, m))
       ~print:(fun (n, a, st, m) ->
         Printf.sprintf "perm=[%s] %s"
           (String.concat ";" (Array.to_list (Array.map string_of_int m)))
           (print_case (n, a, st))))
    (fun (nodes, addrs, st, m) ->
      let l = layout_for ~nodes ~addrs ~capacity:3 in
      Pack.equal (Pack.canonical l st)
        (Pack.canonical l (Mstate.permute (fun j -> m.(j)) ~nodes st)))

(* Width-recomputation safety: a layout seeded with a tiny vocabulary is
   fed states drawing from the full pool.  Either every string fits in
   the headroom bit, or packing raises Overflow; [refresh] then widens
   the field and the retry makes progress (pack aborts at the *first*
   oversized string, so one refresh per overflow, monotone in the dict
   size, terminates).  Vectors packed before any growth still decode
   through the *old* layout value — dicts are append-only and widths are
   per-layout. *)
let prop_width_recompute =
  QCheck.Test.make ~count:300
    ~name:"dictionary growth past the field width: Overflow then refresh"
    case_arb (fun (nodes, addrs, st) ->
      let tiny =
        Pack.layout ~nodes ~addrs ~capacity:3 ~dirst:[ "I" ] ~bst:[ "I" ]
          ~cache:[ "I" ] ~pend:[ "read" ] ~msg:[ "read" ] ()
      in
      let baseline = Mstate.initial ~nodes ~addrs in
      let v0 = Pack.pack tiny baseline in
      let rec pack_growing l fuel =
        match Pack.pack l st with
        | v -> Pack.unpack l v = st
        | exception Pack.Overflow _ when fuel > 0 ->
            pack_growing (Pack.refresh l) (fuel - 1)
      in
      (* every overflow interns the offending string before raising, so
         the dict grows each round: 64 rounds dwarfs the vocabulary *)
      pack_growing tiny 64
      (* growth must never disturb vectors packed under the old widths *)
      && Pack.unpack tiny v0 = baseline
      && Pack.equal v0 (Pack.pack tiny baseline))

(* The visited set itself: adds deduplicate exactly in exact mode, and
   the compacted variant stays sound for re-adds of the same state. *)
let prop_vset =
  QCheck.Test.make ~count:300 ~name:"Vset add/mem agree with packed equality"
    (QCheck.make
       QCheck.Gen.(
         let* nodes, addrs = shape_gen in
         let* sts = list_repeat 12 (state_gen ~nodes ~addrs ~capacity:2) in
         return (nodes, addrs, sts))
       ~print:(fun (n, a, sts) ->
         Printf.sprintf "nodes=%d addrs=%d, %d states" n a (List.length sts)))
    (fun (nodes, addrs, sts) ->
      let l = layout_for ~nodes ~addrs ~capacity:2 in
      let packed = List.map (Pack.pack l) sts in
      let distinct =
        List.sort_uniq Pack.compare_packed packed |> List.length
      in
      let vs = Pack.Vset.create () in
      let inserted =
        List.fold_left
          (fun n v -> if Pack.Vset.add vs v then n + 1 else n)
          0 packed
      in
      let compact = Pack.Vset.create ~compact_bits:30 () in
      inserted = distinct
      && Pack.Vset.cardinal vs = distinct
      && List.for_all (Pack.Vset.mem vs) packed
      && List.for_all
           (fun v ->
             ignore (Pack.Vset.add compact v : bool);
             not (Pack.Vset.add compact v))
           packed)

let suite =
  [
    Test_seed.to_alcotest prop_roundtrip;
    Test_seed.to_alcotest prop_equality;
    Test_seed.to_alcotest prop_hash_stable_across_domains;
    Test_seed.to_alcotest prop_pack_perm;
    Test_seed.to_alcotest prop_canonical_orbit;
    Test_seed.to_alcotest prop_width_recompute;
    Test_seed.to_alcotest prop_vset;
  ]
