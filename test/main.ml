(* Aggregated test suites for the whole reproduction. *)

let () =
  Alcotest.run "asura_sql"
    [
      "observability", Test_obs.suite;
      "values-rows-schemas", Test_value.suite;
      "expressions", Test_expr.suite;
      "tables-and-operators", Test_table.suite;
      "constraint-solver", Test_solver.suite;
      "sql-front-end", Test_sql.suite;
      "plans-and-csv", Test_plan.suite;
      "indexes-and-physical-plans", Test_physical.suite;
      "graphs", Test_graph.suite;
      "relalg-properties", Test_relalg_props.suite;
      "planner-differential", Test_planner.suite;
      "lineage-and-why", Test_lineage.suite;
      "seq-vs-par-differential", Test_par_diff.suite;
      "state-packing", Test_pack.suite;
      "protocol-model", Test_protocol.suite;
      "ctrl-spec-properties", Test_ctrl_spec_props.suite;
      "checker", Test_checker.suite;
      "reports-and-fixpoint", Test_report.suite;
      "hardware-mapping", Test_mapping.suite;
      "model-checker", Test_mcheck.suite;
      "simulator", Test_sim.suite;
      "sequence-charts", Test_msc.suite;
      "transaction-walkthroughs", Test_walkthrough.suite;
      "coverage-and-manifests", Test_coverage.suite;
      "system-tables", Test_systables.suite;
      "plan-observatory", Test_plans.suite;
      "flight-recorder", Test_events.suite;
    ]
