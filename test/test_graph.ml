(* Digraphs, strongly connected components, cycle enumeration. *)

open Vcgraph

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let g_of edges = Digraph.of_edges (List.map (fun (a, b) -> a, b, ()) edges)

let test_digraph_basics () =
  let g = g_of [ "a", "b"; "b", "c"; "a", "c" ] in
  check_int "vertices" 3 (Digraph.num_vertices g);
  check_int "edges" 3 (Digraph.num_edges g);
  check "mem_edge" true (Digraph.mem_edge g ~src:"a" ~dst:"c");
  check "no reverse edge" false (Digraph.mem_edge g ~src:"c" ~dst:"a");
  check_int "duplicate edges collapse" 3
    (Digraph.num_edges (Digraph.add_edge ~src:"a" ~dst:"b" ~label:() g));
  check_int "parallel edges with distinct labels kept" 2
    (Digraph.num_edges (Digraph.of_edges [ "a", "b", 1; "a", "b", 2 ]))

let test_transpose_reachable () =
  let g = g_of [ "a", "b"; "b", "c" ] in
  Alcotest.(check (list string)) "reachable" [ "a"; "b"; "c" ]
    (Digraph.reachable g "a");
  Alcotest.(check (list string)) "reachable from sink" [ "c" ]
    (Digraph.reachable g "c");
  let t = Digraph.transpose g in
  check "transpose reverses" true (Digraph.mem_edge t ~src:"c" ~dst:"b")

let test_scc () =
  let g = g_of [ "a", "b"; "b", "a"; "b", "c"; "c", "d"; "d", "c"; "e", "e" ] in
  let comps = Scc.components g in
  check_int "components" 3 (List.length comps);
  let cyclic = Scc.cyclic_components g in
  check_int "cyclic components (incl. self-loop)" 3 (List.length cyclic);
  check "not acyclic" false (Scc.is_acyclic g);
  check "dag is acyclic" true (Scc.is_acyclic (g_of [ "a", "b"; "b", "c" ]))

let test_cycle_enumeration () =
  (* two elementary cycles sharing a vertex, plus a self-loop *)
  let g = g_of [ "a", "b"; "b", "a"; "b", "c"; "c", "b"; "d", "d" ] in
  let cycles = Cycles.enumerate g in
  check_int "three elementary cycles" 3 (List.length cycles);
  check_int "cycles through b" 2 (List.length (Cycles.involving cycles "b"));
  check_int "self-loop length" 1
    (List.length
       (List.find (fun (c : _ Cycles.cycle) -> c.nodes = [ "d" ]) cycles).nodes)

let test_cycle_limit () =
  (* complete digraph on 5 vertices has many elementary cycles *)
  let vs = [ "a"; "b"; "c"; "d"; "e" ] in
  let edges =
    List.concat_map (fun x -> List.filter_map (fun y -> if x = y then None else Some (x, y)) vs) vs
  in
  check_int "limit respected" 7 (List.length (Cycles.enumerate ~limit:7 (g_of edges)))

let test_labels_along_cycle () =
  let g = Digraph.of_edges [ "x", "y", "first"; "y", "x", "second" ] in
  let cycles = Cycles.enumerate g in
  check_int "one cycle" 1 (List.length cycles);
  let c = List.hd cycles in
  Alcotest.(check (list string)) "labels in order" [ "first"; "second" ] c.labels

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dot () =
  let g = Digraph.of_edges [ "VC2", "VC4", "dep" ] in
  let dot = Dot.to_dot ~edge_label:(fun l -> l) g in
  check "mentions vertices" true (contains dot "VC2" && contains dot "VC4");
  check "mentions label" true (contains dot "dep");
  let highlighted = Dot.highlight_cycles g (Cycles.enumerate g) in
  check "well-formed dot" true (contains highlighted "digraph")

(* random DAG: enumerate finds nothing; adding a back edge finds >= 1 *)
let dag_gen =
  QCheck.Gen.(
    let* n = int_range 3 7 in
    let* edges =
      list_size (int_bound 12)
        (let* i = int_bound (n - 2) in
         let* j = int_range (i + 1) (n - 1) in
         return (Printf.sprintf "v%d" i, Printf.sprintf "v%d" j))
    in
    return (n, edges))

let prop_dag_no_cycles =
  QCheck.Test.make ~name:"forward-edge graphs are acyclic"
    (QCheck.make dag_gen) (fun (_, edges) ->
      Scc.is_acyclic (g_of edges) && Cycles.enumerate (g_of edges) = [])

let prop_scc_vs_johnson =
  QCheck.Test.make ~name:"SCC cyclicity iff Johnson finds a cycle"
    (QCheck.make
       QCheck.Gen.(
         list_size (int_bound 10)
           (pair (oneofl [ "a"; "b"; "c"; "d" ]) (oneofl [ "a"; "b"; "c"; "d" ]))))
    (fun edges ->
      let g = g_of edges in
      Scc.is_acyclic g = (Cycles.enumerate g = []))

(* Brute-force elementary-cycle oracle: every elementary cycle has a
   unique smallest vertex [s], and is found exactly once by a DFS from
   [s] that only passes through vertices greater than [s]. *)
let brute_force_cycles g =
  let cycles = ref [] in
  List.iter
    (fun s ->
      let rec dfs path v =
        List.iter
          (fun (w, ()) ->
            if w = s then cycles := List.rev path :: !cycles
            else if w > s && not (List.mem w path) then dfs (w :: path) w)
          (Digraph.successors g v)
      in
      dfs [ s ] s)
    (Digraph.vertices g);
  List.sort compare !cycles

let small_digraph_gen =
  QCheck.Gen.(
    let* n = int_range 2 8 in
    let vertex = map (Printf.sprintf "v%d") (int_bound (n - 1)) in
    list_size (int_bound 14) (pair vertex vertex))

let prop_johnson_vs_brute_force =
  QCheck.Test.make ~count:500
    ~name:"Johnson enumeration matches the brute-force oracle (<= 8 nodes)"
    (QCheck.make small_digraph_gen ~print:(fun edges ->
         String.concat " " (List.map (fun (a, b) -> a ^ "->" ^ b) edges)))
    (fun edges ->
      let g = g_of edges in
      List.sort compare
        (List.map (fun (c : _ Cycles.cycle) -> c.nodes) (Cycles.enumerate g))
      = brute_force_cycles g)

let suite =
  [
    Alcotest.test_case "digraph basics" `Quick test_digraph_basics;
    Alcotest.test_case "transpose/reachable" `Quick test_transpose_reachable;
    Alcotest.test_case "strongly connected components" `Quick test_scc;
    Alcotest.test_case "cycle enumeration" `Quick test_cycle_enumeration;
    Alcotest.test_case "cycle limit" `Quick test_cycle_limit;
    Alcotest.test_case "labels along cycles" `Quick test_labels_along_cycle;
    Alcotest.test_case "dot export" `Quick test_dot;
    Test_seed.to_alcotest prop_dag_no_cycles;
    Test_seed.to_alcotest prop_scc_vs_johnson;
    Test_seed.to_alcotest prop_johnson_vs_brute_force;
  ]
