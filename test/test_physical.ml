(* Hash indexes and the physical planner. *)

open Relalg

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let db = lazy (Protocol.database ())
let store = lazy (Physical.make_store (Lazy.force db))
let d_indexes = [ "D", "inmsg"; "D", "bdirst" ]

(* ------------------------------- index ------------------------------ *)

let test_index_lookup () =
  let d = Protocol.Dir_controller.table () in
  let idx = Index.build d "inmsg" in
  let readex = Index.lookup idx (Value.str "readex") in
  check "finds readex rows" true (List.length readex > 10);
  check "rows actually match" true
    (List.for_all
       (fun row -> Value.equal (Table.cell d row "inmsg") (Value.str "readex"))
       readex);
  check_int "misses return nothing" 0
    (List.length (Index.lookup idx (Value.str "nosuchmsg")));
  check "index is consistent with its table" true (Index.consistent idx d)

let test_index_order_preserved () =
  let t =
    Table.of_rows ~name:"ord"
      (Schema.of_list [ "k"; "v" ])
      (List.map Row.strings [ [ "a"; "1" ]; [ "b"; "9" ]; [ "a"; "2" ]; [ "a"; "3" ] ])
  in
  let idx = Index.build t "k" in
  Alcotest.(check (list string)) "table order within a bucket"
    [ "1"; "2"; "3" ]
    (List.map (fun r -> Value.to_string r.(1)) (Index.lookup idx (Value.str "a")))

let prop_index_agrees_with_scan =
  QCheck.Test.make ~count:100 ~name:"index lookup = select scan"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_bound 20)
              (pair (oneofl [ "a"; "b"; "c"; "d" ]) (oneofl [ "1"; "2"; "3" ])))
           (oneofl [ "a"; "b"; "c"; "d"; "zz" ])))
    (fun (rows, probe) ->
      let t =
        Table.of_rows ~name:"q"
          (Schema.of_list [ "k"; "v" ])
          (List.map (fun (k, v) -> Row.strings [ k; v ]) rows)
      in
      let idx = Index.build t "k" in
      let via_index = Index.lookup idx (Value.str probe) in
      let via_scan = Table.rows (Ops.select (Expr.eq "k" probe) t) in
      List.length via_index = List.length via_scan
      && List.for_all2 Row.equal via_index via_scan)

(* --------------------------- physical plans ------------------------- *)

let test_physicalize_chooses_index () =
  let logical =
    Plan.of_query
      (Sql_parser.parse_query
         "SELECT * FROM D WHERE inmsg = 'readex' AND dirst = 'SI'")
  in
  match Physical.physicalize ~indexes:d_indexes logical with
  | Physical.Access (Physical.Index_lookup { table = "D"; column = "inmsg"; residual = Some _; _ }) -> ()
  | p -> Alcotest.fail ("expected index lookup:\n" ^ Physical.explain p)

let test_physicalize_without_index () =
  let logical =
    Plan.of_query (Sql_parser.parse_query "SELECT * FROM D WHERE dirst = 'SI'")
  in
  match Physical.physicalize ~indexes:d_indexes logical with
  | Physical.Select (_, Physical.Access (Physical.Seq_scan "D")) -> ()
  | p -> Alcotest.fail ("expected seq scan:\n" ^ Physical.explain p)

let physical_queries =
  [
    "SELECT * FROM D WHERE inmsg = 'readex'";
    "SELECT DISTINCT locmsg FROM D WHERE inmsg = 'readex' AND bdirlookup = 'hit'";
    "SELECT inmsg, bdirst FROM D WHERE bdirst = 'Busy-readex-sd'";
    "SELECT COUNT(*) FROM D WHERE inmsg = 'wb' AND locmsg = 'compl'";
    "SELECT DISTINCT inmsg FROM D WHERE inmsg = 'read' UNION SELECT DISTINCT inmsg FROM D WHERE inmsg = 'wb'";
  ]

let test_physical_agrees_with_executor () =
  List.iter
    (fun q ->
      let via_phys =
        Physical.run ~indexes:d_indexes (Lazy.force store) q
      in
      let via_exec = Sql_exec.query (Lazy.force db) q in
      check ("same result: " ^ q) true (Table.equal_as_sets via_phys via_exec))
    physical_queries

let test_store_caches_indexes () =
  let store = Physical.make_store (Lazy.force db) in
  let t0 = Sys.time () in
  ignore (Physical.run ~indexes:d_indexes store "SELECT * FROM D WHERE inmsg = 'readex'");
  let cold = Sys.time () -. t0 in
  let t1 = Sys.time () in
  for _ = 1 to 50 do
    ignore (Physical.run ~indexes:d_indexes store "SELECT * FROM D WHERE inmsg = 'readex'")
  done;
  let warm_each = (Sys.time () -. t1) /. 50. in
  (* warm lookups must not rebuild the index; allow generous slack *)
  check "cache is effective" true (warm_each < cold +. 0.01)

(* Regression: CREATE TABLE … AS re-registers a name in the database; a
   store carried across that statement (Physical.with_db) must notice the
   table's storage identity changed and re-index instead of serving rows
   of the dead snapshot. *)
let test_store_invalidates_replaced_table () =
  let schema = Schema.of_list [ "k"; "v" ] in
  let mk rows =
    Table.of_rows ~name:"T" schema (List.map Row.strings rows)
  in
  let db1 = Database.of_tables [ mk [ [ "a"; "1" ]; [ "b"; "2" ] ] ] in
  let store1 = Physical.make_store db1 in
  let indexes = [ "T", "k" ] in
  let q = "SELECT * FROM T WHERE k = 'a'" in
  check_int "initial index sees one row" 1
    (Table.cardinality (Physical.run ~indexes store1 q));
  (* same name, new storage (as Sql_exec's Create_table_as does) *)
  let db2 =
    Database.replace db1 (mk [ [ "a"; "10" ]; [ "a"; "11" ]; [ "c"; "3" ] ])
  in
  let store2 = Physical.with_db store1 db2 in
  let fresh = Physical.run ~indexes store2 q in
  check_int "index rebuilt for replaced table" 2 (Table.cardinality fresh);
  check "rows come from the new snapshot" true
    (Table.equal_as_sets fresh
       (mk [ [ "a"; "10" ]; [ "a"; "11" ] ]));
  (* and the old snapshot still answers through its own store *)
  check_int "old store unaffected" 1
    (Table.cardinality (Physical.run ~indexes store1 q))

let test_explain_physical () =
  let p =
    Physical.physicalize ~indexes:d_indexes
      (Plan.of_query (Sql_parser.parse_query "SELECT * FROM D WHERE inmsg = 'wb'"))
  in
  let s = Physical.explain p in
  check "mentions index lookup" true
    (let needle = "index lookup D.inmsg" in
     let rec go i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || go (i + 1))
     in
     go 0)

let suite =
  [
    Alcotest.test_case "index lookup" `Quick test_index_lookup;
    Alcotest.test_case "bucket order" `Quick test_index_order_preserved;
    Alcotest.test_case "physicalize chooses index" `Quick test_physicalize_chooses_index;
    Alcotest.test_case "physicalize falls back to scan" `Quick test_physicalize_without_index;
    Alcotest.test_case "physical agrees with executor" `Quick test_physical_agrees_with_executor;
    Alcotest.test_case "index cache" `Quick test_store_caches_indexes;
    Alcotest.test_case "index cache invalidation" `Quick
      test_store_invalidates_replaced_table;
    Alcotest.test_case "physical explain" `Quick test_explain_physical;
    Test_seed.to_alcotest prop_index_agrees_with_scan;
  ]
