(* Deadlock detection and invariant checking — the paper's section 4. *)

open Checker

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------------------- virtual-channel assignments ----------------- *)

let test_vcassign_shape () =
  check "readex rides VC0" true
    (Vcassign.lookup Vcassign.with_vc4 ~msg:"readex" ~src:"local" ~dst:"home"
    = Some "VC0");
  check "sinv rides VC1" true
    (Vcassign.lookup Vcassign.with_vc4 ~msg:"sinv" ~src:"home" ~dst:"remote"
    = Some "VC1");
  check "idone rides VC2" true
    (Vcassign.lookup Vcassign.with_vc4 ~msg:"idone" ~src:"remote" ~dst:"home"
    = Some "VC2");
  check "data rides VC3" true
    (Vcassign.lookup Vcassign.with_vc4 ~msg:"data" ~src:"home" ~dst:"local"
    = Some "VC3");
  check "mread rides VC4 before the fix" true
    (Vcassign.lookup Vcassign.with_vc4 ~msg:"mread" ~src:"home" ~dst:"home"
    = Some "VC4");
  check "mread rides VC0 initially" true
    (Vcassign.lookup Vcassign.initial ~msg:"mread" ~src:"home" ~dst:"home"
    = Some "VC0");
  check "mread dedicated after the fix" true
    (Vcassign.lookup Vcassign.debugged ~msg:"mread" ~src:"home" ~dst:"home"
    = None);
  Alcotest.(check (list string)) "channels of the initial assignment"
    [ "VC0"; "VC1"; "VC2"; "VC3" ]
    (Vcassign.channels Vcassign.initial)

let test_vcassign_table_roundtrip () =
  let t = Vcassign.to_table Vcassign.with_vc4 in
  check_int "4 columns" 4 (Relalg.Table.arity t);
  let back = Vcassign.of_table t in
  check "roundtrip preserves lookups" true
    (List.for_all
       (fun (a : Vcassign.assignment) ->
         Vcassign.lookup back ~msg:a.msg ~src:a.src ~dst:a.dst = Some a.vc)
       Vcassign.with_vc4.rows)

let test_vcassign_edit () =
  let v = Vcassign.reassign Vcassign.initial ~msg:"mread" ~src:"home" ~dst:"home" ~vc:"VC9" in
  check "reassign" true
    (Vcassign.lookup v ~msg:"mread" ~src:"home" ~dst:"home" = Some "VC9");
  let v = Vcassign.remove v ~msg:"mread" ~src:"home" ~dst:"home" in
  check "remove" true (Vcassign.lookup v ~msg:"mread" ~src:"home" ~dst:"home" = None)

(* ---------------------------- dependencies -------------------------- *)

let test_individual_dependencies () =
  let deps = Dependency.individual ~v:Vcassign.with_vc4 Protocol.memory in
  (* every memory-table row: in on VC4, out on VC2 *)
  check "memory deps exist" true (deps <> []);
  check "memory: VC4 in, VC2 out" true
    (List.for_all
       (fun (e : Dependency.entry) ->
         e.dep.input.vc = "VC4" && e.dep.output.vc = "VC2")
       deps)

let test_pif_has_no_dependencies () =
  (* transactions originate at the PIF: no input channel, no deps *)
  check_int "PIF contributes nothing" 0
    (List.length (Dependency.individual ~v:Vcassign.with_vc4 Protocol.pif))

let test_relocate () =
  let dep =
    {
      Dependency.input = { msg = "idone"; src = "remote"; dst = "home"; vc = "VC2" };
      output = { msg = "mread"; src = "home"; dst = "home"; vc = "VC4" };
    }
  in
  let dep' = Dependency.relocate Protocol.Topology.Hr_same dep in
  Alcotest.(check string) "paper's R2': remote rewritten to home" "home"
    dep'.Dependency.input.src;
  Alcotest.(check string) "channel unchanged" "VC2" dep'.Dependency.input.vc

let test_composition_modes () =
  let mk im isrc idst ivc om osrc odst ovc =
    {
      Dependency.dep =
        {
          input = { msg = im; src = isrc; dst = idst; vc = ivc };
          output = { msg = om; src = osrc; dst = odst; vc = ovc };
        };
      provenance = Dependency.Direct "T";
      origin = [ ("T", 0) ];
    }
  in
  (* the paper's R1 (memory) and R2 (directory) *)
  let r1 = mk "wb" "home" "home" "VC4" "compl" "home" "home" "VC2" in
  let r2 = mk "idone" "remote" "home" "VC2" "mread" "home" "home" "VC4" in
  (* exact match fails: compl <> idone and remote <> home *)
  check_int "no exact composition" 0
    (List.length
       (Dependency.compose ~ignore_messages:false
          ~placement:Protocol.Topology.All_distinct ("M", [ r1 ]) ("D", [ r2 ])));
  (* under L<>H=R with messages ignored, R1 . R2' yields the paper's R3 *)
  let composed =
    Dependency.compose ~ignore_messages:true
      ~placement:Protocol.Topology.Hr_same ("M", [ r1 ]) ("D", [ r2 ])
  in
  check_int "R3 found" 1 (List.length composed);
  let r3 = (List.hd composed).Dependency.dep in
  Alcotest.(check string) "R3 closes on VC4" "VC4" r3.Dependency.output.vc;
  Alcotest.(check string) "R3 input stays wb on VC4" "VC4" r3.Dependency.input.vc

let test_dependency_table_form () =
  let entries =
    Dependency.protocol_dependency ~v:Vcassign.with_vc4
      Protocol.deadlock_controllers
  in
  let t = Dependency.to_table ~name:"pdep" entries in
  check_int "eight columns" 8 (Relalg.Table.arity t);
  check_int "one row per dependency" (List.length entries)
    (Relalg.Table.cardinality t);
  check "no duplicate dependencies" true
    (Relalg.Table.cardinality (Relalg.Table.distinct t)
    = Relalg.Table.cardinality t)

(* ------------------------------ deadlock ---------------------------- *)

let narrative = lazy (Deadlock.narrative ())

let report n = snd (List.nth (Lazy.force narrative) n)

let test_initial_assignment_cycles () =
  let r = report 0 in
  check "several cycles" true (List.length r.Deadlock.cycles >= 3);
  check "not deadlock free" false (Deadlock.is_deadlock_free r);
  (* most involve the directory and memory controllers at home: every
     cycle passes through a channel carrying home-home traffic *)
  check "VC0 self-dependency found" true
    (List.exists
       (fun (c : _ Vcgraph.Cycles.cycle) -> c.nodes = [ "VC0" ])
       r.Deadlock.cycles)

let test_vc4_assignment_finds_figure4 () =
  let r = report 1 in
  let cycles = r.Deadlock.cycles in
  check_int "exactly the three VC2/VC4 cycles" 3 (List.length cycles);
  check "VC2 <-> VC4 cycle" true
    (List.exists
       (fun (c : _ Vcgraph.Cycles.cycle) ->
         List.sort compare c.nodes = [ "VC2"; "VC4" ])
       cycles);
  check "VC2 self-loop from composition" true
    (List.exists (fun (c : _ Vcgraph.Cycles.cycle) -> c.nodes = [ "VC2" ]) cycles);
  check "VC4 self-loop from composition (the paper's R3)" true
    (List.exists (fun (c : _ Vcgraph.Cycles.cycle) -> c.nodes = [ "VC4" ]) cycles);
  check "every cycle involves VC2 or VC4" true
    (List.for_all
       (fun (c : _ Vcgraph.Cycles.cycle) ->
         List.mem "VC2" c.nodes || List.mem "VC4" c.nodes)
       cycles)

let test_debugged_assignment_clean () =
  let r = report 2 in
  check "deadlock free" true (Deadlock.is_deadlock_free r);
  check "summary says so" true
    (let s = Deadlock.summary r in
     let rec contains i =
       i + 9 <= String.length s && (String.sub s i 9 = "no cycles" || contains (i + 1))
     in
     contains 0)

let test_placement_relaxation_matters () =
  (* without placement relaxation and interleavings, fewer dependencies *)
  let strict =
    Deadlock.analyze ~placements:[ Protocol.Topology.All_distinct ]
      ~interleavings:false Vcassign.with_vc4
  in
  let full = report 1 in
  check "relaxations add dependencies" true
    (List.length strict.Deadlock.entries < List.length full.Deadlock.entries)

let test_cycles_through () =
  let r = report 1 in
  check "cycles through VC4" true (Deadlock.cycles_through r "VC4" <> []);
  check_int "no cycles through VC3" 0 (List.length (Deadlock.cycles_through r "VC3"))

(* ------------------------------ invariants -------------------------- *)

let db = lazy (Protocol.database ())

let test_all_invariants_pass () =
  let results = Invariant.run_all (Lazy.force db) in
  check "about 50 invariants" true (List.length results >= 50);
  Alcotest.(check (list string)) "no failures" []
    (List.map
       (fun (r : Invariant.result) -> r.invariant.id)
       (Invariant.failures results))

let test_invariant_lookup () =
  check "find by id" true (Invariant.find "d-mesi-pv-one" <> None);
  check "unknown id" true (Invariant.find "nope" = None)

let run_with_dir_spec spec' invariant_id =
  let tbl, _ = Protocol.Ctrl_spec.generate spec' in
  let db =
    Relalg.Database.replace (Lazy.force db)
      (Relalg.Table.with_name "D" tbl)
  in
  Invariant.run db (Option.get (Invariant.find invariant_id))

(* Seeded bugs: each mutation must be caught by the named invariant —
   experiment E11, early error detection before any implementation. *)

let test_seeded_missing_retry () =
  (* drop the serialization scenario: requests race ahead of busy lines *)
  let spec' =
    Protocol.Ctrl_spec.drop_scenario Protocol.Dir_controller.spec
      Protocol.Dir_controller.busy_retry_label
  in
  let r = run_with_dir_spec spec' "x-request-coverage" in
  check "coverage invariant catches missing retry rows" false r.Invariant.passed

let test_seeded_wrong_pv () =
  (* corrupt the ownership handover: MESI granted with inc instead of repl *)
  let spec' =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec "ack-exclusive"
      (fun s ->
        {
          s with
          emit =
            List.map
              (fun (c, o) ->
                if c = "nxtdirpv" then c, Protocol.Ctrl_spec.Out "inc" else c, o)
              s.emit;
        })
  in
  let r = run_with_dir_spec spec' "d-ownership-transfer" in
  check "ownership invariant catches wrong pv op" false r.Invariant.passed

let test_seeded_dropped_response_row () =
  (* remove the last-idone transition: Busy-readex-sd can hang *)
  let spec' =
    Protocol.Ctrl_spec.drop_scenario Protocol.Dir_controller.spec
      "readex-idone-sd-last"
  in
  let r = run_with_dir_spec spec' "d-busy-progress" in
  (* still has the -more row, so progress holds; determinism and busy
     lifecycle hold too -- but the model checker finds the hang (see
     test_mcheck).  Here we drop BOTH idone rows instead. *)
  ignore r;
  let spec' =
    Protocol.Ctrl_spec.drop_scenario spec' "readex-idone-sd-more"
  in
  let r = run_with_dir_spec spec' "d-busy-progress" in
  check "progress invariant catches unconsumable busy state" false
    r.Invariant.passed

let test_seeded_leaky_dealloc () =
  (* dealloc without completing to the requester *)
  let spec' =
    Protocol.Ctrl_spec.map_scenario Protocol.Dir_controller.spec
      "wb-mack-compl"
      (fun s ->
        { s with emit = List.filter (fun (c, _) -> c <> "locmsg") s.emit })
  in
  let r = run_with_dir_spec spec' "d-dealloc-only-on-completion" in
  check "completion invariant catches silent dealloc" false r.Invariant.passed

let test_seeded_naive_retry_reissue () =
  (* the node-controller bug: reissue on retry from response processing
     creates a VC3 -> VC0 dependency closing the request/response loop *)
  let buggy_node =
    {
      Protocol.node with
      Protocol.spec =
        Protocol.Ctrl_spec.with_scenarios Protocol.Node_controller.spec
          (Protocol.Ctrl_spec.scenarios Protocol.Node_controller.spec
          @ [ Protocol.Node_controller.naive_retry_scenario ]);
    }
  in
  let controllers =
    List.map
      (fun c ->
        if Protocol.Ctrl_spec.name c.Protocol.spec = "N" then buggy_node else c)
      Protocol.deadlock_controllers
  in
  let clean = Deadlock.analyze ~controllers Vcassign.debugged in
  check "naive retry reissue creates a cycle" false
    (Deadlock.is_deadlock_free clean);
  check "the cycle passes through VC0 and VC3" true
    (List.exists
       (fun (c : _ Vcgraph.Cycles.cycle) ->
         List.mem "VC0" c.nodes && List.mem "VC3" c.nodes)
       clean.Deadlock.cycles)

let test_invariant_summary_format () =
  let results = Invariant.run_all (Lazy.force db) in
  let s = Invariant.summary results in
  check "mentions the tally" true
    (let needle = Printf.sprintf "%d invariants checked" (List.length results) in
     let rec contains i =
       i + String.length needle <= String.length s
       && (String.sub s i (String.length needle) = needle || contains (i + 1))
     in
     contains 0)

let suite =
  [
    Alcotest.test_case "assignment shape" `Quick test_vcassign_shape;
    Alcotest.test_case "assignment table roundtrip" `Quick test_vcassign_table_roundtrip;
    Alcotest.test_case "assignment editing" `Quick test_vcassign_edit;
    Alcotest.test_case "individual dependency tables" `Quick test_individual_dependencies;
    Alcotest.test_case "PIF originates, never depends" `Quick test_pif_has_no_dependencies;
    Alcotest.test_case "placement relocation (R2 -> R2')" `Quick test_relocate;
    Alcotest.test_case "composition modes (R1 . R2' = R3)" `Quick test_composition_modes;
    Alcotest.test_case "dependency table form" `Quick test_dependency_table_form;
    Alcotest.test_case "initial assignment: several cycles" `Slow test_initial_assignment_cycles;
    Alcotest.test_case "VC4 assignment: the Figure 4 cycle" `Slow test_vc4_assignment_finds_figure4;
    Alcotest.test_case "debugged assignment: clean" `Slow test_debugged_assignment_clean;
    Alcotest.test_case "relaxation adds dependencies" `Slow test_placement_relaxation_matters;
    Alcotest.test_case "cycles through a channel" `Slow test_cycles_through;
    Alcotest.test_case "all invariants pass" `Quick test_all_invariants_pass;
    Alcotest.test_case "invariant lookup" `Quick test_invariant_lookup;
    Alcotest.test_case "seeded: missing retry" `Quick test_seeded_missing_retry;
    Alcotest.test_case "seeded: wrong pv op" `Quick test_seeded_wrong_pv;
    Alcotest.test_case "seeded: dropped response rows" `Quick test_seeded_dropped_response_row;
    Alcotest.test_case "seeded: leaky dealloc" `Quick test_seeded_leaky_dealloc;
    Alcotest.test_case "seeded: naive retry reissue" `Slow test_seeded_naive_retry_reissue;
    Alcotest.test_case "summary format" `Quick test_invariant_summary_format;
  ]
